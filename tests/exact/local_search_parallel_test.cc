// The parallel pass of LocalSearchSolver (DESIGN.md §10.3): the pool-
// planned moves match an independent serial reference implementation on
// randomized instances, the objective is monotone non-decreasing per
// pass, and parallel_moves never changes results — only schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/formation.h"
#include "core/greedy.h"
#include "core/solver_registry.h"
#include "data/synthetic.h"
#include "exact/local_search.h"
#include "exact/register_solvers.h"

namespace groupform {
namespace {

using core::FormationProblem;
using exact::LocalSearchSolver;
using PlannedMove = LocalSearchSolver::PlannedMove;

FormationProblem Problem(const data::RatingMatrix& matrix, int k, int ell) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = grouprec::Semantics::kLeastMisery;
  problem.aggregation = grouprec::Aggregation::kMin;
  problem.k = k;
  problem.max_groups = ell;
  return problem;
}

/// A random (possibly unbalanced, possibly with empty groups) partition.
std::vector<std::vector<UserId>> RandomPartition(std::int32_t num_users,
                                                 int ell,
                                                 std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::vector<UserId>> groups(static_cast<std::size_t>(ell));
  for (UserId u = 0; u < num_users; ++u) {
    groups[static_cast<std::size_t>(
               rng.NextUint64(static_cast<std::uint64_t>(ell)))]
        .push_back(u);
  }
  return groups;
}

double Evaluate(const FormationProblem& problem,
                const grouprec::GroupScorer& scorer,
                const std::vector<UserId>& members) {
  if (members.empty()) return 0.0;
  const auto list = core::ComputeGroupList(problem, scorer, members);
  return core::AggregateListSatisfaction(
      problem, static_cast<int>(members.size()), list);
}

/// Independent serial re-implementation of the per-user move policy:
/// best relocation (targets in group order, one empty slot considered),
/// else the first improving sampled swap from the user's (pass_seed, u)
/// stream. Deliberately written from the documented policy, not by
/// calling into the solver.
PlannedMove ReferencePlan(const FormationProblem& problem,
                          const grouprec::GroupScorer& scorer,
                          const std::vector<std::vector<UserId>>& groups,
                          const std::vector<double>& satisfaction,
                          const std::vector<int>& group_of, UserId u,
                          std::uint64_t pass_seed,
                          const LocalSearchSolver::Options& options) {
  PlannedMove move;
  if (groups.size() <= 1) return move;
  const int from = group_of[static_cast<std::size_t>(u)];
  std::vector<UserId> from_without = groups[static_cast<std::size_t>(from)];
  from_without.erase(
      std::find(from_without.begin(), from_without.end(), u));
  const double from_without_sat = Evaluate(problem, scorer, from_without);

  bool considered_empty = false;
  for (std::size_t to = 0; to < groups.size(); ++to) {
    if (static_cast<int>(to) == from) continue;
    if (groups[to].empty()) {
      if (considered_empty) continue;
      considered_empty = true;
    }
    std::vector<UserId> to_with = groups[to];
    to_with.push_back(u);
    std::sort(to_with.begin(), to_with.end());
    const double to_with_sat = Evaluate(problem, scorer, to_with);
    const double gain =
        (from_without_sat + to_with_sat) -
        (satisfaction[static_cast<std::size_t>(from)] + satisfaction[to]);
    const double bar =
        move.kind == PlannedMove::Kind::kNone ? options.min_improvement
                                              : move.gain;
    if (gain > bar) {
      move.kind = PlannedMove::Kind::kRelocate;
      move.to = static_cast<int>(to);
      move.gain = gain;
      move.from_sat = from_without_sat;
      move.to_sat = to_with_sat;
    }
  }
  if (move.kind == PlannedMove::Kind::kRelocate || !options.use_swaps) {
    return move;
  }

  common::Rng rng = exact::SwapRngForUser(pass_seed, u);
  for (std::size_t to = 0; to < groups.size(); ++to) {
    if (static_cast<int>(to) == from || groups[to].empty()) continue;
    for (int s = 0; s < options.swap_samples; ++s) {
      const auto& dst = groups[to];
      const UserId v =
          dst[static_cast<std::size_t>(rng.NextUint64(dst.size()))];
      std::vector<UserId> from_swapped = from_without;
      from_swapped.push_back(v);
      std::sort(from_swapped.begin(), from_swapped.end());
      std::vector<UserId> to_swapped = dst;
      to_swapped.erase(
          std::find(to_swapped.begin(), to_swapped.end(), v));
      to_swapped.push_back(u);
      std::sort(to_swapped.begin(), to_swapped.end());
      const double from_sat = Evaluate(problem, scorer, from_swapped);
      const double to_sat = Evaluate(problem, scorer, to_swapped);
      const double gain =
          (from_sat + to_sat) -
          (satisfaction[static_cast<std::size_t>(from)] + satisfaction[to]);
      if (gain > options.min_improvement) {
        move.kind = PlannedMove::Kind::kSwap;
        move.to = static_cast<int>(to);
        move.partner = v;
        move.gain = gain;
        move.from_sat = from_sat;
        move.to_sat = to_sat;
        return move;
      }
    }
  }
  return move;
}

class LocalSearchParallelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    common::ThreadPool::SetDefaultThreadCount(0);
  }
};

TEST_F(LocalSearchParallelTest, ParallelPlanMatchesSerialReference) {
  for (const std::uint64_t trial : {1u, 2u, 3u, 4u}) {
    const std::int32_t num_users = 20 + static_cast<std::int32_t>(trial) * 7;
    const int ell = 2 + static_cast<int>(trial);
    const auto matrix = data::GenerateLatentFactor(
        data::MovieLensLikeConfig(num_users, 25, /*seed=*/trial * 13));
    const auto problem = Problem(matrix, /*k=*/3, ell);
    const auto scorer = problem.MakeScorer();
    const auto groups = RandomPartition(num_users, ell, trial * 101);

    std::vector<double> satisfaction(groups.size());
    const auto scores = core::ScoreGroups(problem, scorer, groups);
    for (std::size_t g = 0; g < groups.size(); ++g) {
      satisfaction[g] = scores[g].satisfaction;
    }
    std::vector<int> group_of(static_cast<std::size_t>(num_users), 0);
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (UserId u : groups[g]) {
        group_of[static_cast<std::size_t>(u)] = static_cast<int>(g);
      }
    }
    std::vector<UserId> visit_order(static_cast<std::size_t>(num_users));
    for (std::int32_t u = 0; u < num_users; ++u) {
      visit_order[static_cast<std::size_t>(u)] = u;
    }
    common::Rng(trial * 7).Shuffle(visit_order);
    const std::uint64_t pass_seed = trial * 0xabcdef123ULL + 5;

    LocalSearchSolver::Options options;
    options.parallel_moves = true;
    common::ThreadPool::SetDefaultThreadCount(8);
    const auto planned =
        exact::PlanPassMoves(problem, scorer, groups, satisfaction,
                             group_of, visit_order, pass_seed, options);
    ASSERT_EQ(planned.size(), visit_order.size());
    for (std::size_t i = 0; i < visit_order.size(); ++i) {
      const PlannedMove expected =
          ReferencePlan(problem, scorer, groups, satisfaction, group_of,
                        visit_order[i], pass_seed, options);
      SCOPED_TRACE("trial " + std::to_string(trial) + " user " +
                   std::to_string(visit_order[i]));
      EXPECT_EQ(static_cast<int>(planned[i].kind),
                static_cast<int>(expected.kind));
      EXPECT_EQ(planned[i].to, expected.to);
      EXPECT_EQ(planned[i].partner, expected.partner);
      EXPECT_EQ(planned[i].gain, expected.gain);        // bitwise
      EXPECT_EQ(planned[i].from_sat, expected.from_sat);
      EXPECT_EQ(planned[i].to_sat, expected.to_sat);
    }
  }
}

TEST_F(LocalSearchParallelTest, ObjectiveMonotoneNonDecreasingPerPass) {
  const auto matrix = data::GenerateClusteredDense(36, 18, 4, 53);
  const auto problem = Problem(matrix, /*k=*/3, /*ell=*/5);
  const auto greedy = core::RunGreedy(problem);
  ASSERT_TRUE(greedy.ok());
  double previous = greedy->objective;
  // With a fixed seed, a run capped at p passes is a prefix of a run
  // capped at p + 1, so per-pass monotonicity is visible through the
  // public API as monotonicity in max_passes.
  for (int passes = 0; passes <= 6; ++passes) {
    LocalSearchSolver::Options options;
    options.max_passes = passes;
    const auto result = LocalSearchSolver(problem, options).Run();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_GE(result->objective, previous - 1e-9) << "passes=" << passes;
    EXPECT_TRUE(core::ValidatePartition(problem, *result).ok());
    previous = std::max(previous, result->objective);
  }
}

TEST_F(LocalSearchParallelTest, ParallelMovesKnobNeverChangesResults) {
  const auto matrix = data::GenerateLatentFactor(
      data::MovieLensLikeConfig(40, 20, /*seed=*/61));
  const auto problem = Problem(matrix, /*k=*/3, /*ell=*/6);
  common::ThreadPool::SetDefaultThreadCount(8);
  LocalSearchSolver::Options serial_options;
  serial_options.parallel_moves = false;
  const auto serial = LocalSearchSolver(problem, serial_options).Run();
  LocalSearchSolver::Options parallel_options;
  parallel_options.parallel_moves = true;
  const auto parallel = LocalSearchSolver(problem, parallel_options).Run();
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->objective, serial->objective);  // bitwise
  ASSERT_EQ(parallel->groups.size(), serial->groups.size());
  for (std::size_t g = 0; g < serial->groups.size(); ++g) {
    EXPECT_EQ(parallel->groups[g].members, serial->groups[g].members);
    EXPECT_EQ(parallel->groups[g].recommendation.items,
              serial->groups[g].recommendation.items);
  }
}

TEST_F(LocalSearchParallelTest, SingleGroupInstancePlansNoMoves) {
  const auto matrix = data::GenerateClusteredDense(12, 8, 2, 71);
  const auto problem = Problem(matrix, /*k=*/2, /*ell=*/1);
  const auto result = LocalSearchSolver(problem).Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(core::ValidatePartition(problem, *result).ok());
  EXPECT_EQ(result->num_groups(), 1);
}

TEST_F(LocalSearchParallelTest, FactoryValidatesParallelKnobsAtCreate) {
  exact::RegisterExactSolvers();  // idempotent: duplicates are rejected
  auto& registry = core::SolverRegistry::Global();
  const auto matrix = data::GenerateClusteredDense(10, 6, 2, 73);
  const auto problem = Problem(matrix, /*k=*/2, /*ell=*/3);

  const auto negative = registry.Create(
      "localsearch", problem,
      core::SolverOptions().Set("shard_min_items", "-4"));
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), common::StatusCode::kInvalidArgument);

  const auto garbage = registry.Create(
      "localsearch", problem,
      core::SolverOptions().Set("shard_min_items", "zebra"));
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), common::StatusCode::kInvalidArgument);

  const auto bad_bool = registry.Create(
      "localsearch", problem,
      core::SolverOptions().Set("parallel_moves", "yes"));
  ASSERT_FALSE(bad_bool.ok());
  EXPECT_EQ(bad_bool.status().code(),
            common::StatusCode::kInvalidArgument);

  const auto valid = registry.Create(
      "localsearch", problem,
      core::SolverOptions().Set("shard_min_items", "128").Set(
          "parallel_moves", "false"));
  ASSERT_TRUE(valid.ok()) << valid.status();
  const auto solved = (*valid)->Solve();
  ASSERT_TRUE(solved.ok());
  EXPECT_TRUE(core::ValidatePartition(problem, *solved).ok());
}

}  // namespace
}  // namespace groupform
