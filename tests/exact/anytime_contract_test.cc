// The anytime-solve contract (DESIGN.md §17.4): a deadline_ms budget on
// the iterative refiners returns the best-so-far partition marked
// partial=true instead of failing — a 0 budget deterministically yields
// the (greedy) seed snapshot before any refinement, no budget yields a
// run byte-identical to the plain solver, and the pass-boundary
// snapshots are monotone in the objective, so every answer an expiring
// deadline can surface dominates the earlier ones.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/formation.h"
#include "core/greedy.h"
#include "data/synthetic.h"
#include "exact/anytime.h"
#include "exact/local_search.h"
#include "exact/simulated_annealing.h"
#include "grouprec/semantics.h"

namespace groupform {
namespace {

using core::FormationProblem;
using core::FormationResult;
using exact::LocalSearchSolver;
using exact::SimulatedAnnealingSolver;

FormationProblem Problem(const data::RatingMatrix& matrix) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = grouprec::Semantics::kLeastMisery;
  problem.aggregation = grouprec::Aggregation::kMin;
  problem.k = 3;
  problem.max_groups = 5;
  return problem;
}

void ExpectIdentical(const FormationResult& a, const FormationResult& b) {
  EXPECT_EQ(a.objective, b.objective);  // bitwise
  EXPECT_EQ(a.partial, b.partial);
  EXPECT_EQ(a.refine_passes, b.refine_passes);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].members, b.groups[g].members) << "group " << g;
    EXPECT_EQ(a.groups[g].recommendation.items,
              b.groups[g].recommendation.items);
  }
}

TEST(AnytimeContract, ZeroBudgetReturnsGreedySeedPartial) {
  const auto matrix = data::GenerateLatentFactor(
      data::YahooMusicLikeConfig(60, 30, /*seed=*/811));
  const auto problem = Problem(matrix);
  LocalSearchSolver::Options options;
  options.deadline_ms = 0;
  const auto result = LocalSearchSolver(problem, options).Run();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->partial);
  EXPECT_EQ(result->refine_passes, 0);
  // The snapshot is the greedy seed — not some half-applied pass. The
  // objective is recomputed through the same scorer, so it matches
  // RunGreedy to rounding.
  const auto greedy = core::RunGreedy(problem);
  ASSERT_TRUE(greedy.ok());
  EXPECT_NEAR(result->objective, greedy->objective, 1e-9);
  EXPECT_NEAR(core::RecomputeObjective(problem, *result), result->objective,
              1e-9);
}

TEST(AnytimeContract, NoBudgetIsByteIdenticalToThePlainSolver) {
  const auto matrix = data::GenerateLatentFactor(
      data::YahooMusicLikeConfig(50, 30, /*seed=*/813));
  const auto problem = Problem(matrix);
  LocalSearchSolver::Options unlimited;
  unlimited.deadline_ms = -1;
  const auto armed = LocalSearchSolver(problem, unlimited).Solve(7);
  const auto plain = LocalSearchSolver(problem).Solve(7);
  ASSERT_TRUE(armed.ok()) << armed.status();
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_FALSE(armed->partial);
  ExpectIdentical(*armed, *plain);
}

TEST(AnytimeContract, PassSnapshotsAreMonotoneInTheObjective) {
  // max_passes caps the run at exactly the pass boundaries the deadline
  // can fire on, so the sequence of capped objectives IS the sequence of
  // snapshots an expiring budget could return — it must never regress.
  const auto matrix = data::GenerateLatentFactor(
      data::YahooMusicLikeConfig(60, 30, /*seed=*/815));
  const auto problem = Problem(matrix);
  double previous = -1.0;
  for (const int passes : {0, 1, 2, 3, 200}) {
    LocalSearchSolver::Options options;
    options.max_passes = passes;
    const auto result = LocalSearchSolver(problem, options).Solve(7);
    ASSERT_TRUE(result.ok()) << "passes=" << passes << ": "
                             << result.status();
    EXPECT_GE(result->objective, previous - 1e-12) << "passes=" << passes;
    previous = result->objective;
  }
}

TEST(AnytimeContract, SimulatedAnnealingZeroBudgetReturnsSeedPartial) {
  const auto matrix = data::GenerateLatentFactor(
      data::YahooMusicLikeConfig(40, 25, /*seed=*/817));
  const auto problem = Problem(matrix);
  SimulatedAnnealingSolver::Options options;
  options.deadline_ms = 0;
  const auto result = SimulatedAnnealingSolver(problem, options).Solve(5);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->partial);
  // init_with_greedy (the default) seeds from greedy; with zero budget
  // no proposal is ever evaluated, so the best-ever state is the seed.
  const auto greedy = core::RunGreedy(problem);
  ASSERT_TRUE(greedy.ok());
  EXPECT_NEAR(result->objective, greedy->objective, 1e-9);
}

TEST(AnytimeContract, WrapperDelegatesAndPrefixesTheName) {
  const auto matrix = data::GenerateLatentFactor(
      data::YahooMusicLikeConfig(40, 25, /*seed=*/819));
  const auto problem = Problem(matrix);
  LocalSearchSolver::Options options;
  options.deadline_ms = 0;
  const exact::AnytimeSolver wrapped(
      std::make_unique<LocalSearchSolver>(problem, options));
  EXPECT_EQ(wrapped.name(), "anytime:localsearch");
  const auto via_wrapper = wrapped.Solve(7);
  const auto direct = LocalSearchSolver(problem, options).Solve(7);
  ASSERT_TRUE(via_wrapper.ok()) << via_wrapper.status();
  ASSERT_TRUE(direct.ok()) << direct.status();
  ExpectIdentical(*via_wrapper, *direct);
}

}  // namespace
}  // namespace groupform
