// LocalSearchSolver: never worse than its greedy seed, close to optimal on
// small instances, valid everywhere.
#include <gtest/gtest.h>

#include "core/formation.h"
#include "core/greedy.h"
#include "data/synthetic.h"
#include "exact/local_search.h"
#include "exact/subset_dp.h"
#include "grouprec/semantics.h"

namespace groupform {
namespace {

using core::FormationProblem;
using grouprec::Aggregation;
using grouprec::Semantics;

FormationProblem Problem(const data::RatingMatrix& matrix,
                         Semantics semantics, Aggregation aggregation, int k,
                         int ell) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = semantics;
  problem.aggregation = aggregation;
  problem.k = k;
  problem.max_groups = ell;
  return problem;
}

TEST(LocalSearch, NeverBelowGreedySeed) {
  const auto matrix = data::GenerateClusteredDense(60, 20, 6, 31);
  for (const auto semantics :
       {Semantics::kLeastMisery, Semantics::kAggregateVoting}) {
    for (const auto aggregation :
         {Aggregation::kMax, Aggregation::kMin, Aggregation::kSum}) {
      const auto problem = Problem(matrix, semantics, aggregation, 3, 6);
      const auto greedy = core::RunGreedy(problem);
      ASSERT_TRUE(greedy.ok());
      const auto ls = exact::LocalSearchSolver(problem).Run();
      ASSERT_TRUE(ls.ok()) << ls.status();
      EXPECT_GE(ls->objective, greedy->objective - 1e-9)
          << problem.ToString();
      EXPECT_TRUE(core::ValidatePartition(problem, *ls).ok());
    }
  }
}

TEST(LocalSearch, ReachesOrApproachesTheOptimumOnSmallInstances) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto matrix = data::GenerateUniformDense(
        9, 5, data::RatingScale{1.0, 5.0}, seed);
    const auto problem = Problem(matrix, Semantics::kAggregateVoting,
                                 Aggregation::kMin, 2, 3);
    const auto opt = exact::SubsetDpSolver(problem).Run();
    ASSERT_TRUE(opt.ok());
    const auto ls = exact::LocalSearchSolver(problem).Run();
    ASSERT_TRUE(ls.ok());
    EXPECT_LE(ls->objective, opt->objective + 1e-9);
    // Hill climbing from the greedy seed should recover most of the gap.
    EXPECT_GE(ls->objective, 0.9 * opt->objective);
  }
}

TEST(LocalSearch, RandomInitAlsoProducesValidPartitions) {
  const auto matrix = data::GenerateClusteredDense(40, 15, 4, 37);
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kSum, 3, 5);
  exact::LocalSearchSolver::Options options;
  options.init_with_greedy = false;
  options.max_passes = 10;
  const auto result = exact::LocalSearchSolver(problem, options).Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(core::ValidatePartition(problem, *result).ok());
}

TEST(LocalSearch, DeterministicForFixedSeed) {
  const auto matrix = data::GenerateClusteredDense(30, 12, 3, 41);
  const auto problem = Problem(matrix, Semantics::kAggregateVoting,
                               Aggregation::kSum, 2, 4);
  const auto a = exact::LocalSearchSolver(problem).Run();
  const auto b = exact::LocalSearchSolver(problem).Run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->objective, b->objective);
}

}  // namespace
}  // namespace groupform
