// IpModel: structural checks of the emitted LP text (no MILP solver ships
// with the repository; the text is for external CPLEX/Gurobi use).
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "data/paper_examples.h"
#include "exact/ip_model.h"
#include "grouprec/semantics.h"

namespace groupform {
namespace {

using core::FormationProblem;
using grouprec::Aggregation;
using grouprec::Semantics;

FormationProblem Problem(const data::RatingMatrix& matrix,
                         Semantics semantics, Aggregation aggregation, int k,
                         int ell) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = semantics;
  problem.aggregation = aggregation;
  problem.k = k;
  problem.max_groups = ell;
  return problem;
}

int CountOccurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(IpModel, LmMinModelHasExpectedSections) {
  const auto matrix = data::PaperExample1();
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kMin, 2, 3);
  const auto lp = exact::IpModel::BuildLpText(problem);
  ASSERT_TRUE(lp.ok()) << lp.status();
  EXPECT_NE(lp->find("Maximize"), std::string::npos);
  EXPECT_NE(lp->find("Subject To"), std::string::npos);
  EXPECT_NE(lp->find("Binaries"), std::string::npos);
  EXPECT_NE(lp->find("End"), std::string::npos);
  // One assignment constraint per user.
  EXPECT_EQ(CountOccurrences(*lp, "assign_"), 6);
  // One pivot-selection constraint per group.
  EXPECT_EQ(CountOccurrences(*lp, " pivot_"), 3);
  // LM linearisation: one constraint per (item, group, user).
  EXPECT_EQ(CountOccurrences(*lp, " lm_"), 3 * 3 * 6);
  // Min ordering constraints exist for k > 1.
  EXPECT_GT(CountOccurrences(*lp, " ord_"), 0);
}

TEST(IpModel, AvModelSumsMemberScores) {
  const auto matrix = data::PaperExample2();
  const auto problem = Problem(matrix, Semantics::kAggregateVoting,
                               Aggregation::kMin, 2, 2);
  const auto lp = exact::IpModel::BuildLpText(problem);
  ASSERT_TRUE(lp.ok());
  EXPECT_EQ(CountOccurrences(*lp, " av_"), 3 * 2);
  EXPECT_EQ(CountOccurrences(*lp, " lm_"), 0);
}

TEST(IpModel, SumAggregationUsesPerItemContributions) {
  const auto matrix = data::PaperExample1();
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kSum, 2, 2);
  const auto lp = exact::IpModel::BuildLpText(problem);
  ASSERT_TRUE(lp.ok());
  EXPECT_GT(CountOccurrences(*lp, "z_"), 0);
  EXPECT_EQ(CountOccurrences(*lp, " piv_"), 0);
}

TEST(IpModel, KEqualsOneOmitsRestSelection) {
  const auto matrix = data::PaperExample1();
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kMin, 1, 2);
  const auto lp = exact::IpModel::BuildLpText(problem);
  ASSERT_TRUE(lp.ok());
  EXPECT_EQ(CountOccurrences(*lp, " rest_"), 0);
  EXPECT_EQ(CountOccurrences(*lp, "w_"), 0);
}

TEST(IpModel, RefusesHugeInstances) {
  data::RatingMatrixBuilder builder(3000, 3000,
                                    data::RatingScale{1.0, 5.0});
  ASSERT_TRUE(builder.AddRating(0, 0, 3.0).ok());
  const auto matrix = std::move(builder).Build();
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kMin, 2, 10);
  EXPECT_EQ(exact::IpModel::BuildLpText(problem).status().code(),
            common::StatusCode::kResourceExhausted);
}

TEST(IpModel, WriteLpFileRoundTrips) {
  const auto matrix = data::PaperExample1();
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kMin, 1, 2);
  const std::string path = testing::TempDir() + "/model.lp";
  ASSERT_TRUE(exact::IpModel::WriteLpFile(problem, path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("Maximize"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace groupform
