// SubsetDpSolver vs BruteForceSolver cross-validation and exact-solver
// behaviour on the paper instances.
#include <tuple>

#include <gtest/gtest.h>

#include "core/formation.h"
#include "data/paper_examples.h"
#include "data/synthetic.h"
#include "exact/subset_dp.h"
#include "grouprec/semantics.h"

namespace groupform {
namespace {

using core::FormationProblem;
using grouprec::Aggregation;
using grouprec::Semantics;

FormationProblem Problem(const data::RatingMatrix& matrix,
                         Semantics semantics, Aggregation aggregation, int k,
                         int ell) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = semantics;
  problem.aggregation = aggregation;
  problem.k = k;
  problem.max_groups = ell;
  return problem;
}

class DpVsBruteForceTest
    : public testing::TestWithParam<
          std::tuple<Semantics, Aggregation, int, int, std::uint64_t>> {};

TEST_P(DpVsBruteForceTest, AgreeOnRandomInstances) {
  const auto [semantics, aggregation, k, ell, seed] = GetParam();
  const auto matrix = data::GenerateUniformDense(
      7, 4, data::RatingScale{1.0, 5.0}, seed);
  const auto problem = Problem(matrix, semantics, aggregation, k, ell);
  const auto dp = exact::SubsetDpSolver(problem).Run();
  const auto bf = exact::BruteForceSolver(problem).Run();
  ASSERT_TRUE(dp.ok()) << dp.status();
  ASSERT_TRUE(bf.ok()) << bf.status();
  EXPECT_NEAR(dp->objective, bf->objective, 1e-9) << problem.ToString();
  EXPECT_TRUE(core::ValidatePartition(problem, *dp).ok());
  EXPECT_TRUE(core::ValidatePartition(problem, *bf).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DpVsBruteForceTest,
    testing::Combine(
        testing::Values(Semantics::kLeastMisery,
                        Semantics::kAggregateVoting),
        testing::Values(Aggregation::kMax, Aggregation::kMin,
                        Aggregation::kSum),
        testing::Values(1, 2),            // k
        testing::Values(2, 3),            // ell
        testing::Values(101u, 202u)));    // seed

TEST(SubsetDp, RefusesOversizedInstances) {
  const auto matrix = data::GenerateUniformDense(
      20, 4, data::RatingScale{1.0, 5.0}, 1);
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kMin, 2, 3);
  const auto result = exact::SubsetDpSolver(problem).Run();
  EXPECT_EQ(result.status().code(),
            common::StatusCode::kResourceExhausted);
}

TEST(SubsetDp, EllOneIsTheWholePopulationScore) {
  const auto matrix = data::PaperExample1();
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kMin, 1, 1);
  const auto result = exact::SubsetDpSolver(problem).Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_groups(), 1);
  // One group of all six users; best LM top-1 score is 1 (all items have a
  // 1 somewhere in Table 1).
  EXPECT_DOUBLE_EQ(result->objective, 1.0);
}

TEST(SubsetDp, MoreGroupsNeverHurt) {
  const auto matrix = data::GenerateUniformDense(
      8, 5, data::RatingScale{1.0, 5.0}, 5);
  for (const auto semantics :
       {Semantics::kLeastMisery, Semantics::kAggregateVoting}) {
    double previous = -1.0;
    for (int ell = 1; ell <= 4; ++ell) {
      const auto problem =
          Problem(matrix, semantics, Aggregation::kMin, 2, ell);
      const auto result = exact::SubsetDpSolver(problem).Run();
      ASSERT_TRUE(result.ok());
      EXPECT_GE(result->objective, previous - 1e-9);
      previous = result->objective;
    }
  }
}

TEST(SubsetDp, SingletonPartitionWhenEllEqualsUsers) {
  const auto matrix = data::PaperExample1();
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kMax, 1, 6);
  const auto result = exact::SubsetDpSolver(problem).Run();
  ASSERT_TRUE(result.ok());
  // With ell = n, the optimum gives everyone their own favourite: the sum
  // of per-user maxima: 4+5+5+5+3+5 = 27.
  EXPECT_DOUBLE_EQ(result->objective, 27.0);
}

}  // namespace
}  // namespace groupform
