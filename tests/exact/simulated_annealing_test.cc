// SimulatedAnnealingSolver: seed domination, validity, determinism, and
// closeness to the optimum on small instances.
#include <gtest/gtest.h>

#include "core/greedy.h"
#include "data/synthetic.h"
#include "exact/simulated_annealing.h"
#include "exact/subset_dp.h"
#include "grouprec/semantics.h"

namespace groupform {
namespace {

using core::FormationProblem;
using grouprec::Aggregation;
using grouprec::Semantics;

FormationProblem Problem(const data::RatingMatrix& matrix,
                         Semantics semantics, Aggregation aggregation, int k,
                         int ell) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = semantics;
  problem.aggregation = aggregation;
  problem.k = k;
  problem.max_groups = ell;
  return problem;
}

TEST(SimulatedAnnealing, NeverBelowGreedySeed) {
  const auto matrix = data::GenerateClusteredDense(60, 20, 6, 81);
  for (const auto semantics :
       {Semantics::kLeastMisery, Semantics::kAggregateVoting}) {
    const auto problem =
        Problem(matrix, semantics, Aggregation::kMin, 3, 6);
    const auto greedy = core::RunGreedy(problem);
    ASSERT_TRUE(greedy.ok());
    exact::SimulatedAnnealingSolver::Options options;
    options.iterations = 4000;
    const auto sa =
        exact::SimulatedAnnealingSolver(problem, options).Run();
    ASSERT_TRUE(sa.ok()) << sa.status();
    EXPECT_GE(sa->objective, greedy->objective - 1e-9)
        << problem.ToString();
    EXPECT_TRUE(core::ValidatePartition(problem, *sa).ok());
  }
}

TEST(SimulatedAnnealing, ApproachesTheOptimumOnSmallInstances) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto matrix = data::GenerateUniformDense(
        10, 5, data::RatingScale{1.0, 5.0}, seed);
    const auto problem = Problem(matrix, Semantics::kAggregateVoting,
                                 Aggregation::kMin, 2, 3);
    const auto opt = exact::SubsetDpSolver(problem).Run();
    ASSERT_TRUE(opt.ok());
    exact::SimulatedAnnealingSolver::Options options;
    options.iterations = 8000;
    const auto sa =
        exact::SimulatedAnnealingSolver(problem, options).Run();
    ASSERT_TRUE(sa.ok());
    EXPECT_LE(sa->objective, opt->objective + 1e-9);
    EXPECT_GE(sa->objective, 0.9 * opt->objective) << "seed " << seed;
  }
}

TEST(SimulatedAnnealing, DeterministicForFixedSeed) {
  const auto matrix = data::GenerateClusteredDense(40, 15, 4, 83);
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kSum, 3, 4);
  exact::SimulatedAnnealingSolver::Options options;
  options.iterations = 2000;
  const auto a = exact::SimulatedAnnealingSolver(problem, options).Run();
  const auto b = exact::SimulatedAnnealingSolver(problem, options).Run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->objective, b->objective);
}

TEST(SimulatedAnnealing, RandomInitStillProducesValidPartitions) {
  const auto matrix = data::GenerateClusteredDense(50, 15, 5, 85);
  const auto problem = Problem(matrix, Semantics::kAggregateVoting,
                               Aggregation::kSum, 2, 5);
  exact::SimulatedAnnealingSolver::Options options;
  options.init_with_greedy = false;
  options.iterations = 3000;
  const auto sa = exact::SimulatedAnnealingSolver(problem, options).Run();
  ASSERT_TRUE(sa.ok());
  EXPECT_TRUE(core::ValidatePartition(problem, *sa).ok());
}

TEST(SimulatedAnnealing, SingleGroupDegeneratesGracefully) {
  const auto matrix = data::GenerateClusteredDense(20, 10, 2, 87);
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kMin, 2, 1);
  exact::SimulatedAnnealingSolver::Options options;
  options.iterations = 500;
  const auto sa = exact::SimulatedAnnealingSolver(problem, options).Run();
  ASSERT_TRUE(sa.ok());
  EXPECT_EQ(sa->num_groups(), 1);
  EXPECT_TRUE(core::ValidatePartition(problem, *sa).ok());
}

}  // namespace
}  // namespace groupform
