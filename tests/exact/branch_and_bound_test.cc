// BranchAndBoundSolver cross-validation against the subset DP and
// behavioural checks (incumbent fallback, caps, both semantics).
#include <tuple>

#include <gtest/gtest.h>

#include "core/formation.h"
#include "core/greedy.h"
#include "data/paper_examples.h"
#include "data/synthetic.h"
#include "exact/branch_and_bound.h"
#include "exact/subset_dp.h"
#include "grouprec/semantics.h"

namespace groupform {
namespace {

using core::FormationProblem;
using grouprec::Aggregation;
using grouprec::Semantics;

FormationProblem Problem(const data::RatingMatrix& matrix,
                         Semantics semantics, Aggregation aggregation, int k,
                         int ell) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = semantics;
  problem.aggregation = aggregation;
  problem.k = k;
  problem.max_groups = ell;
  return problem;
}

class BnbVsDpTest
    : public testing::TestWithParam<
          std::tuple<Semantics, Aggregation, int, std::uint64_t>> {};

TEST_P(BnbVsDpTest, MatchesTheDpOptimum) {
  const auto [semantics, aggregation, ell, seed] = GetParam();
  const auto matrix = data::GenerateUniformDense(
      9, 5, data::RatingScale{1.0, 5.0}, seed);
  const auto problem = Problem(matrix, semantics, aggregation, 2, ell);
  const auto bnb = exact::BranchAndBoundSolver(problem).Run();
  const auto dp = exact::SubsetDpSolver(problem).Run();
  ASSERT_TRUE(bnb.ok()) << bnb.status();
  ASSERT_TRUE(dp.ok()) << dp.status();
  EXPECT_NEAR(bnb->objective, dp->objective, 1e-9) << problem.ToString();
  EXPECT_EQ(bnb->algorithm, "BNB");  // proved optimal, no budget cutoff
  EXPECT_TRUE(core::ValidatePartition(problem, *bnb).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BnbVsDpTest,
    testing::Combine(testing::Values(Semantics::kLeastMisery,
                                     Semantics::kAggregateVoting),
                     testing::Values(Aggregation::kMax, Aggregation::kMin,
                                     Aggregation::kSum),
                     testing::Values(2, 3),
                     testing::Values(301u, 302u)));

TEST(BranchAndBound, PaperExamplesOptima) {
  const auto matrix1 = data::PaperExample1();
  const auto p1 = Problem(matrix1, Semantics::kLeastMisery,
                          Aggregation::kMin, 1, 3);
  const auto r1 = exact::BranchAndBoundSolver(p1).Run();
  ASSERT_TRUE(r1.ok());
  EXPECT_DOUBLE_EQ(r1->objective, 12.0);

  const auto matrix4 = data::PaperExample4();
  const auto p4 = Problem(matrix4, Semantics::kAggregateVoting,
                          Aggregation::kMin, 2, 2);
  const auto r4 = exact::BranchAndBoundSolver(p4).Run();
  ASSERT_TRUE(r4.ok());
  EXPECT_DOUBLE_EQ(r4->objective, 16.0);
}

TEST(BranchAndBound, RefusesOversizedInstances) {
  const auto matrix = data::GenerateUniformDense(
      30, 4, data::RatingScale{1.0, 5.0}, 5);
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kMin, 2, 3);
  EXPECT_EQ(exact::BranchAndBoundSolver(problem).Run().status().code(),
            common::StatusCode::kResourceExhausted);
}

TEST(BranchAndBound, TinyNodeBudgetStillReturnsAtLeastGreedy) {
  const auto matrix = data::GenerateUniformDense(
      12, 6, data::RatingScale{1.0, 5.0}, 7);
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kMin, 2, 4);
  exact::BranchAndBoundSolver::Options options;
  options.max_nodes = 10;  // almost no search
  const auto bnb = exact::BranchAndBoundSolver(problem, options).Run();
  ASSERT_TRUE(bnb.ok());
  EXPECT_EQ(bnb->algorithm, "BNB*");  // budget exhausted
  const auto greedy = core::RunGreedy(problem);
  ASSERT_TRUE(greedy.ok());
  EXPECT_GE(bnb->objective, greedy->objective - 1e-9);
  EXPECT_TRUE(core::ValidatePartition(problem, *bnb).ok());
}

TEST(BranchAndBound, HandlesLargerInstancesThanTheDp) {
  // 18 users exceeds the DP's default 16-user cap; B&B still proves the
  // optimum and dominates greedy.
  const auto matrix = data::GenerateUniformDense(
      18, 4, data::RatingScale{1.0, 5.0}, 11);
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kMin, 2, 3);
  const auto bnb = exact::BranchAndBoundSolver(problem).Run();
  ASSERT_TRUE(bnb.ok()) << bnb.status();
  const auto greedy = core::RunGreedy(problem);
  ASSERT_TRUE(greedy.ok());
  EXPECT_GE(bnb->objective, greedy->objective - 1e-9);
  EXPECT_TRUE(core::ValidatePartition(problem, *bnb).ok());
}

}  // namespace
}  // namespace groupform
