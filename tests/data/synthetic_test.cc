// Synthetic dataset generators: determinism, scale, sparsity floors, and
#include <cmath>
// the structural properties group formation depends on.
#include <gtest/gtest.h>

#include "data/dataset_stats.h"
#include "data/synthetic.h"

namespace groupform {
namespace {

TEST(GenerateLatentFactor, RespectsShapeScaleAndSparsityFloor) {
  data::SyntheticConfig config;
  config.num_users = 200;
  config.num_items = 120;
  config.min_ratings_per_user = 20;
  config.max_ratings_per_user = 50;
  config.seed = 1;
  const auto matrix = data::GenerateLatentFactor(config);
  EXPECT_EQ(matrix.num_users(), 200);
  EXPECT_EQ(matrix.num_items(), 120);
  for (UserId u = 0; u < matrix.num_users(); ++u) {
    const auto row = matrix.RatingsOf(u);
    EXPECT_GE(row.size(), 20u);
    EXPECT_LE(row.size(), 50u);
    for (const auto& e : row) {
      EXPECT_GE(e.rating, 1.0);
      EXPECT_LE(e.rating, 5.0);
      // Integer quantisation by default.
      EXPECT_DOUBLE_EQ(e.rating, std::round(e.rating));
    }
  }
}

TEST(GenerateLatentFactor, DeterministicForFixedSeed) {
  const auto config = data::YahooMusicLikeConfig(150, 60, 77);
  const auto a = data::GenerateLatentFactor(config);
  const auto b = data::GenerateLatentFactor(config);
  ASSERT_EQ(a.num_ratings(), b.num_ratings());
  for (UserId u = 0; u < a.num_users(); ++u) {
    const auto ra = a.RatingsOf(u);
    const auto rb = b.RatingsOf(u);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i], rb[i]);
    }
  }
}

TEST(GenerateLatentFactor, DifferentSeedsDiffer) {
  auto config = data::YahooMusicLikeConfig(100, 50, 1);
  const auto a = data::GenerateLatentFactor(config);
  config.seed = 2;
  const auto b = data::GenerateLatentFactor(config);
  // Extremely unlikely to coincide.
  bool any_difference = a.num_ratings() != b.num_ratings();
  for (UserId u = 0; !any_difference && u < a.num_users(); ++u) {
    const auto ra = a.RatingsOf(u);
    const auto rb = b.RatingsOf(u);
    if (ra.size() != rb.size()) {
      any_difference = true;
      break;
    }
    for (std::size_t i = 0; i < ra.size(); ++i) {
      if (!(ra[i] == rb[i])) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(GenerateLatentFactor, PopularitySkewConcentratesOnTheHead) {
  auto config = data::YahooMusicLikeConfig(400, 200, 5);
  const auto matrix = data::GenerateLatentFactor(config);
  // Count observations landing in the top 10% of item ids (the Zipf head).
  std::int64_t head = 0;
  for (UserId u = 0; u < matrix.num_users(); ++u) {
    for (const auto& e : matrix.RatingsOf(u)) {
      if (e.item < 20) ++head;
    }
  }
  const double head_share =
      static_cast<double>(head) / static_cast<double>(matrix.num_ratings());
  // Uniform would give 10%; the head-heavy skew should clearly exceed it.
  EXPECT_GT(head_share, 0.2);
}

TEST(GenerateUniformDense, FullDensityIntegerRatings) {
  const auto matrix =
      data::GenerateUniformDense(8, 6, data::RatingScale{1.0, 5.0}, 3);
  EXPECT_EQ(matrix.num_ratings(), 48);
  EXPECT_DOUBLE_EQ(matrix.Density(), 1.0);
  for (UserId u = 0; u < 8; ++u) {
    for (const auto& e : matrix.RatingsOf(u)) {
      EXPECT_DOUBLE_EQ(e.rating, std::round(e.rating));
      EXPECT_GE(e.rating, 1.0);
      EXPECT_LE(e.rating, 5.0);
    }
  }
}

TEST(GenerateClusteredDense, EveryUserRatesEverything) {
  const auto matrix = data::GenerateClusteredDense(50, 30, 5, 9);
  EXPECT_DOUBLE_EQ(matrix.Density(), 1.0);
}

TEST(Presets, ShapesDifferAsDocumented) {
  const auto yahoo = data::YahooMusicLikeConfig(1000, 500);
  const auto movielens = data::MovieLensLikeConfig(1000, 500);
  EXPECT_GT(yahoo.popularity_skew, movielens.popularity_skew);
  EXPECT_GE(yahoo.min_ratings_per_user, 20);
  EXPECT_GE(movielens.min_ratings_per_user, 20);
}

}  // namespace
}  // namespace groupform
