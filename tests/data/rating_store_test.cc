// The RatingStore seam (DESIGN.md §14.4): one non-owning view over both
// backends, with the dense path reading the exact same entries as the
// matrix's own accessors and the compact path reading the exact same
// values as the compact matrix's own accessors.
#include "data/rating_store.h"

#include <gtest/gtest.h>

#include <vector>

#include "data/compact_matrix.h"
#include "data/rating_matrix.h"
#include "data/synthetic.h"

namespace groupform::data {
namespace {

struct Visited {
  ItemId item;
  Rating rating;
  friend bool operator==(const Visited&, const Visited&) = default;
};

std::vector<Visited> CollectRow(const RatingStore& store, UserId user) {
  std::vector<Visited> out;
  store.VisitRow(user, [&out](ItemId item, Rating rating) {
    out.push_back({item, rating});
  });
  return out;
}

std::vector<Visited> CollectRange(const RatingStore& store, UserId user,
                                  ItemId begin, ItemId end) {
  std::vector<Visited> out;
  store.VisitRowRange(user, begin, end,
                      [&out](ItemId item, Rating rating) {
                        out.push_back({item, rating});
                      });
  return out;
}

TEST(RatingStore, DenseViewMatchesTheMatrixExactly) {
  const auto matrix = GenerateLatentFactor(MovieLensLikeConfig(10, 8, 3));
  const RatingStore store(matrix);
  ASSERT_TRUE(store.is_dense());
  EXPECT_EQ(store.num_users(), matrix.num_users());
  EXPECT_EQ(store.num_items(), matrix.num_items());
  EXPECT_EQ(store.num_ratings(), matrix.num_ratings());
  EXPECT_EQ(store.ByteSize(), matrix.ByteSize());
  std::vector<RatingEntry> scratch;
  for (UserId u = 0; u < matrix.num_users(); ++u) {
    const auto row = matrix.RatingsOf(u);
    const auto visited = CollectRow(store, u);
    ASSERT_EQ(visited.size(), row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(visited[i].item, row[i].item);
      EXPECT_EQ(visited[i].rating, row[i].rating);  // bitwise
    }
    // The span path is zero-copy on dense: same backing data.
    const auto span = store.Row(u, scratch);
    ASSERT_EQ(span.size(), row.size());
    if (!row.empty()) {
      EXPECT_EQ(span.data(), row.data());
    }
  }
}

TEST(RatingStore, CompactViewMatchesTheCompactMatrixExactly) {
  const auto matrix = GenerateLatentFactor(MovieLensLikeConfig(10, 8, 3));
  const auto compact = CompactRatingMatrix::FromMatrix(matrix, 8);
  const RatingStore store(compact);
  ASSERT_FALSE(store.is_dense());
  EXPECT_EQ(store.num_users(), compact.num_users());
  EXPECT_EQ(store.num_ratings(), compact.num_ratings());
  EXPECT_EQ(store.ByteSize(), compact.ByteSize());
  std::vector<RatingEntry> scratch;
  for (UserId u = 0; u < matrix.num_users(); ++u) {
    const auto visited = CollectRow(store, u);
    const auto span = store.Row(u, scratch);
    ASSERT_EQ(visited.size(), span.size());
    for (std::size_t i = 0; i < visited.size(); ++i) {
      EXPECT_EQ(span[i].item, visited[i].item);
      EXPECT_EQ(span[i].rating, visited[i].rating);
      EXPECT_EQ(store.GetRating(u, visited[i].item), visited[i].rating);
    }
  }
}

TEST(RatingStore, RangeVisitsAgreeWithFullVisitsOnBothBackends) {
  const auto matrix = GenerateLatentFactor(MovieLensLikeConfig(8, 12, 9));
  const auto compact = CompactRatingMatrix::FromMatrix(matrix, 8);
  for (const RatingStore& store :
       {RatingStore(matrix), RatingStore(compact)}) {
    for (UserId u = 0; u < store.num_users(); ++u) {
      const auto full = CollectRow(store, u);
      for (const auto& [begin, end] :
           {std::pair<ItemId, ItemId>{0, 12}, {3, 7}, {11, 12}, {5, 5}}) {
        std::vector<Visited> expected;
        for (const auto& v : full) {
          if (v.item >= begin && v.item < end) expected.push_back(v);
        }
        EXPECT_EQ(CollectRange(store, u, begin, end), expected)
            << "u=" << u << " [" << begin << "," << end << ")";
      }
    }
  }
}

TEST(RatingStore, GetRatingOrFallsBackForMissingCells) {
  RatingScale scale;
  RatingMatrixBuilder builder(2, 3, scale);
  ASSERT_TRUE(builder.AddRating(0, 1, 4.0).ok());
  const RatingMatrix matrix = std::move(builder).Build();
  const auto compact = CompactRatingMatrix::FromMatrix(matrix, 8);
  for (const RatingStore& store :
       {RatingStore(matrix), RatingStore(compact)}) {
    EXPECT_EQ(store.GetRatingOr(0, 1, -9.0), 4.0);
    EXPECT_EQ(store.GetRatingOr(0, 2, -9.0), -9.0);
    EXPECT_EQ(store.GetRatingOr(1, 1, -9.0), -9.0);
    EXPECT_FALSE(store.GetRating(1, 0).has_value());
  }
}

}  // namespace
}  // namespace groupform::data
