// Dataset statistics and the five-point summary used by Table 3 / Table 4.
#include <gtest/gtest.h>

#include "data/dataset_stats.h"
#include "data/paper_examples.h"

namespace groupform {
namespace {

TEST(Summarize, KnownQuartiles) {
  const auto s = data::Summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Summarize, InterpolatesBetweenOrderStatistics) {
  const auto s = data::Summarize({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.q1, 1.75);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.q3, 3.25);
}

TEST(Summarize, SingletonAndEmpty) {
  const auto one = data::Summarize({7});
  EXPECT_DOUBLE_EQ(one.min, 7.0);
  EXPECT_DOUBLE_EQ(one.median, 7.0);
  EXPECT_DOUBLE_EQ(one.max, 7.0);
  const auto none = data::Summarize({});
  EXPECT_DOUBLE_EQ(none.median, 0.0);
}

TEST(ComputeStats, PaperExample1Facts) {
  const auto matrix = data::PaperExample1();
  const auto stats = data::ComputeStats(matrix, "example1");
  EXPECT_EQ(stats.num_users, 6);
  EXPECT_EQ(stats.num_items, 3);
  EXPECT_EQ(stats.num_ratings, 18);
  EXPECT_DOUBLE_EQ(stats.density, 1.0);
  // Sum of all ratings in Table 1 is 47.
  EXPECT_NEAR(stats.mean_rating, 47.0 / 18.0, 1e-12);
  // Histogram: count each value in Table 1.
  EXPECT_EQ(stats.rating_histogram.at(1), 6);
  EXPECT_EQ(stats.rating_histogram.at(2), 4);
  EXPECT_EQ(stats.rating_histogram.at(3), 3);
  EXPECT_EQ(stats.rating_histogram.at(4), 1);
  EXPECT_EQ(stats.rating_histogram.at(5), 4);
  // Every user rated all 3 items.
  EXPECT_DOUBLE_EQ(stats.ratings_per_user.min, 3.0);
  EXPECT_DOUBLE_EQ(stats.ratings_per_user.max, 3.0);
  // Report text mentions the name and the shape.
  const auto text = data::StatsToString(stats);
  EXPECT_NE(text.find("example1"), std::string::npos);
  EXPECT_NE(text.find("users: 6"), std::string::npos);
}

}  // namespace
}  // namespace groupform
