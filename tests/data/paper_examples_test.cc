// The hard-coded paper tables must match the paper cell by cell.
#include <gtest/gtest.h>

#include "data/paper_examples.h"

namespace groupform {
namespace {

TEST(PaperExamples, Table1Cells) {
  const auto m = data::PaperExample1();
  ASSERT_EQ(m.num_users(), 6);
  ASSERT_EQ(m.num_items(), 3);
  // Spot-check a full user column: u2 = (i1: 2, i2: 3, i3: 5).
  EXPECT_DOUBLE_EQ(m.GetRating(1, 0).value(), 2.0);
  EXPECT_DOUBLE_EQ(m.GetRating(1, 1).value(), 3.0);
  EXPECT_DOUBLE_EQ(m.GetRating(1, 2).value(), 5.0);
  // And the corners.
  EXPECT_DOUBLE_EQ(m.GetRating(0, 0).value(), 1.0);
  EXPECT_DOUBLE_EQ(m.GetRating(5, 2).value(), 5.0);
}

TEST(PaperExamples, Table2Cells) {
  const auto m = data::PaperExample2();
  // u3 = u4 = (2, 5, 1).
  for (UserId u : {2, 3}) {
    EXPECT_DOUBLE_EQ(m.GetRating(u, 0).value(), 2.0);
    EXPECT_DOUBLE_EQ(m.GetRating(u, 1).value(), 5.0);
    EXPECT_DOUBLE_EQ(m.GetRating(u, 2).value(), 1.0);
  }
  EXPECT_DOUBLE_EQ(m.GetRating(0, 2).value(), 4.0);
}

TEST(PaperExamples, Example3And4Shapes) {
  const auto e3 = data::PaperExample3();
  EXPECT_EQ(e3.num_users(), 2);
  EXPECT_EQ(e3.num_items(), 3);
  EXPECT_DOUBLE_EQ(e3.GetRating(0, 0).value(), 5.0);
  EXPECT_DOUBLE_EQ(e3.GetRating(1, 2).value(), 5.0);

  const auto e4 = data::PaperExample4();
  EXPECT_EQ(e4.num_users(), 4);
  EXPECT_EQ(e4.num_items(), 2);
  // u2 = u3 = (4, 5); u4 = (3, 2).
  EXPECT_DOUBLE_EQ(e4.GetRating(1, 1).value(), 5.0);
  EXPECT_DOUBLE_EQ(e4.GetRating(2, 1).value(), 5.0);
  EXPECT_DOUBLE_EQ(e4.GetRating(3, 0).value(), 3.0);
}

TEST(PaperExamples, Table5Cells) {
  const auto m = data::PaperExample5();
  // u5 = (2, 4, 3): differs from Example 1's u5 = (3, 1, 1).
  EXPECT_DOUBLE_EQ(m.GetRating(4, 0).value(), 2.0);
  EXPECT_DOUBLE_EQ(m.GetRating(4, 1).value(), 4.0);
  EXPECT_DOUBLE_EQ(m.GetRating(4, 2).value(), 3.0);
}

}  // namespace
}  // namespace groupform
