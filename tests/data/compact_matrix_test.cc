// The DESIGN.md §14 storage contract: quantized cells round-trip within
// the documented tolerance (exactly, on integer-grid ratings), the GFCM
// on-disk format round-trips through both read modes, and corrupt or
// truncated files surface INVALID_ARGUMENT — never a GF_CHECK abort.
#include "data/compact_matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "data/binary_io.h"
#include "data/rating_matrix.h"
#include "data/synthetic.h"

namespace groupform::data {
namespace {

RatingMatrix IntegerMatrix() {
  RatingScale scale;  // 1..5
  RatingMatrixBuilder builder(4, 6, scale);
  EXPECT_TRUE(builder.AddRating(0, 0, 5.0).ok());
  EXPECT_TRUE(builder.AddRating(0, 2, 3.0).ok());
  EXPECT_TRUE(builder.AddRating(0, 5, 1.0).ok());
  EXPECT_TRUE(builder.AddRating(1, 1, 4.0).ok());
  EXPECT_TRUE(builder.AddRating(1, 2, 2.0).ok());
  EXPECT_TRUE(builder.AddRating(3, 0, 1.0).ok());
  EXPECT_TRUE(builder.AddRating(3, 4, 5.0).ok());
  return std::move(builder).Build();
}

std::string TempPath(const std::string& stem) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + stem;
}

TEST(Quantization, IntegerGridRatingsRoundTripExactly) {
  const RatingMatrix matrix = IntegerMatrix();
  for (const int bits : {8, 16}) {
    const auto compact = CompactRatingMatrix::FromMatrix(matrix, bits);
    for (UserId u = 0; u < matrix.num_users(); ++u) {
      for (const RatingEntry& entry : matrix.RatingsOf(u)) {
        const auto got = compact.GetRating(u, entry.item);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, entry.rating)  // bitwise, not approximate
            << "bits=" << bits << " u=" << u << " i=" << entry.item;
      }
    }
  }
}

TEST(Quantization, FractionalRatingsStayWithinDocumentedTolerance) {
  RatingScale scale;
  RatingMatrixBuilder builder(1, 64, scale);
  for (ItemId i = 0; i < 64; ++i) {
    const Rating r = 1.0 + 4.0 * (static_cast<double>(i) / 63.0);
    EXPECT_TRUE(builder.AddRating(0, i, r).ok());
  }
  const RatingMatrix matrix = std::move(builder).Build();
  for (const int bits : {8, 16}) {
    const auto compact = CompactRatingMatrix::FromMatrix(matrix, bits);
    const double tolerance = compact.quant().max_roundtrip_error();
    // The headline bound from DESIGN.md §14.2.
    EXPECT_LE(tolerance, scale.range() / std::pow(2.0, bits - 1));
    for (const RatingEntry& entry : matrix.RatingsOf(0)) {
      const auto got = compact.GetRating(0, entry.item);
      ASSERT_TRUE(got.has_value());
      EXPECT_LE(std::abs(*got - entry.rating), tolerance);
      EXPECT_TRUE(scale.Contains(*got));
    }
  }
}

TEST(Quantization, ToMatrixIsTheExactDequantization) {
  const auto matrix = GenerateLatentFactor(MovieLensLikeConfig(12, 9, 5));
  const auto compact = CompactRatingMatrix::FromMatrix(matrix, 8);
  const RatingMatrix round = compact.ToMatrix();
  ASSERT_EQ(round.num_users(), matrix.num_users());
  ASSERT_EQ(round.num_items(), matrix.num_items());
  ASSERT_EQ(round.num_ratings(), matrix.num_ratings());
  for (UserId u = 0; u < round.num_users(); ++u) {
    std::size_t i = 0;
    const auto dense_row = matrix.RatingsOf(u);
    for (const RatingEntry& entry : round.RatingsOf(u)) {
      EXPECT_EQ(entry.item, dense_row[i].item);
      // ToMatrix must equal the compact read path bit-for-bit.
      EXPECT_EQ(entry.rating, *compact.GetRating(u, entry.item));
      ++i;
    }
  }
}

TEST(Quantization, ItemStreamNarrowsForSmallCatalogues) {
  const RatingMatrix small = IntegerMatrix();  // 6 items
  EXPECT_EQ(CompactRatingMatrix::FromMatrix(small, 8).item_bits(), 16);
  RatingScale scale;
  RatingMatrixBuilder builder(1, 70'000, scale);
  EXPECT_TRUE(builder.AddRating(0, 69'999, 3.0).ok());
  const RatingMatrix wide = std::move(builder).Build();
  EXPECT_EQ(CompactRatingMatrix::FromMatrix(wide, 8).item_bits(), 32);
}

TEST(CompactBinary, RoundTripsThroughBothReadModes) {
  const auto matrix = GenerateLatentFactor(MovieLensLikeConfig(20, 15, 7));
  const std::string path = TempPath("gfcm_roundtrip.gfcm");
  for (const int bits : {8, 16}) {
    const auto compact = CompactRatingMatrix::FromMatrix(matrix, bits);
    ASSERT_TRUE(SaveCompactBinary(compact, path).ok());
    for (const CompactReadMode mode :
         {CompactReadMode::kInMemory, CompactReadMode::kMmap}) {
      const auto loaded = LoadCompactBinary(path, mode);
      ASSERT_TRUE(loaded.ok()) << loaded.status();
      EXPECT_EQ(loaded->num_users(), compact.num_users());
      EXPECT_EQ(loaded->num_items(), compact.num_items());
      EXPECT_EQ(loaded->num_ratings(), compact.num_ratings());
      EXPECT_EQ(loaded->rating_bits(), bits);
      EXPECT_EQ(loaded->mmap_backed(), mode == CompactReadMode::kMmap);
      for (UserId u = 0; u < matrix.num_users(); ++u) {
        for (const RatingEntry& entry : matrix.RatingsOf(u)) {
          EXPECT_EQ(loaded->GetRating(u, entry.item),
                    compact.GetRating(u, entry.item));
        }
      }
    }
  }
  std::remove(path.c_str());
}

TEST(CompactBinary, MmapChargesOnlyTheFixedOverhead) {
  const auto compact = CompactRatingMatrix::FromMatrix(IntegerMatrix(), 8);
  const std::string path = TempPath("gfcm_overhead.gfcm");
  ASSERT_TRUE(SaveCompactBinary(compact, path).ok());
  const auto mapped = LoadCompactBinary(path, CompactReadMode::kMmap);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->ResidentBytes(), kMmapResidentOverheadBytes);
  EXPECT_EQ(mapped->ByteSize(), compact.ByteSize());
  const auto in_ram = LoadCompactBinary(path, CompactReadMode::kInMemory);
  ASSERT_TRUE(in_ram.ok());
  EXPECT_EQ(in_ram->ResidentBytes(), in_ram->ByteSize());
  std::remove(path.c_str());
}

TEST(CompactBinary, MissingFileIsNotFound) {
  const auto loaded = LoadCompactBinary("/nonexistent/x.gfcm",
                                        CompactReadMode::kMmap);
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kNotFound);
}

TEST(CompactBinary, TruncatedAndCorruptFilesAreInvalidArgument) {
  const auto compact = CompactRatingMatrix::FromMatrix(IntegerMatrix(), 8);
  const std::string path = TempPath("gfcm_corrupt.gfcm");
  ASSERT_TRUE(SaveCompactBinary(compact, path).ok());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(bytes.size(), 64u);

  const auto write_and_load = [&](const std::string& contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.close();
    return LoadCompactBinary(path, CompactReadMode::kMmap).status();
  };

  // Truncations at every interesting boundary: inside the magic, inside
  // the header, inside the payload.
  for (const std::size_t keep : {std::size_t{2}, std::size_t{33},
                                 bytes.size() - 1}) {
    const auto status = write_and_load(bytes.substr(0, keep));
    EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument)
        << "keep=" << keep << ": " << status;
  }
  {  // Wrong magic.
    std::string bad = bytes;
    bad[0] = 'X';
    EXPECT_EQ(write_and_load(bad).code(),
              common::StatusCode::kInvalidArgument);
  }
  {  // Unsupported version.
    std::string bad = bytes;
    bad[4] = 9;
    EXPECT_EQ(write_and_load(bad).code(),
              common::StatusCode::kInvalidArgument);
  }
  {  // Out-of-grid quantized cell (last byte of the q stream).
    std::string bad = bytes;
    bad[bad.size() - 1] = '\x7f';  // biased 127 = unbiased 255 > intervals
    EXPECT_EQ(write_and_load(bad).code(),
              common::StatusCode::kInvalidArgument);
  }
  {  // Trailing garbage (size mismatch).
    EXPECT_EQ(write_and_load(bytes + "junk").code(),
              common::StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST(CompactMatrix, CellWidthsAreWhatTheFormatPromises) {
  static_assert(kCellBytesItem16Q8 == 3);
  static_assert(kCellBytesItem16Q16 == 4);
  static_assert(kCellBytesItem32Q8 == 5);
  static_assert(kCellBytesItem32Q16 == 6);
  const auto compact = CompactRatingMatrix::FromMatrix(IntegerMatrix(), 8);
  // 6-item catalogue → 16-bit items + 8-bit cells: 3 bytes/cell + the
  // 8-byte row offsets.
  EXPECT_EQ(compact.ByteSize(),
            compact.num_ratings() * kCellBytesItem16Q8 +
                (compact.num_users() + 1) * 8);
}

}  // namespace
}  // namespace groupform::data
