// Binary matrix snapshots: round-trip fidelity and corruption detection.
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/binary_io.h"
#include "data/paper_examples.h"
#include "data/synthetic.h"

namespace groupform {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

void ExpectMatricesEqual(const data::RatingMatrix& a,
                         const data::RatingMatrix& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_items(), b.num_items());
  ASSERT_EQ(a.num_ratings(), b.num_ratings());
  EXPECT_EQ(a.scale(), b.scale());
  for (UserId u = 0; u < a.num_users(); ++u) {
    const auto ra = a.RatingsOf(u);
    const auto rb = b.RatingsOf(u);
    ASSERT_EQ(ra.size(), rb.size()) << "user " << u;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i], rb[i]);
    }
  }
}

TEST(BinaryIo, RoundTripsDenseAndSparseMatrices) {
  const std::string path = TempPath("roundtrip.gfrm");
  {
    const auto dense = data::PaperExample1();
    ASSERT_TRUE(data::SaveMatrixBinary(dense, path).ok());
    const auto loaded = data::LoadMatrixBinary(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    ExpectMatricesEqual(dense, *loaded);
  }
  {
    auto config = data::YahooMusicLikeConfig(200, 80, 99);
    config.integer_ratings = false;  // fractional ratings round-trip too
    const auto sparse = data::GenerateLatentFactor(config);
    ASSERT_TRUE(data::SaveMatrixBinary(sparse, path).ok());
    const auto loaded = data::LoadMatrixBinary(path);
    ASSERT_TRUE(loaded.ok());
    ExpectMatricesEqual(sparse, *loaded);
  }
  std::remove(path.c_str());
}

TEST(BinaryIo, MissingFileIsNotFound) {
  EXPECT_EQ(data::LoadMatrixBinary("/no/such/file.gfrm").status().code(),
            common::StatusCode::kNotFound);
}

TEST(BinaryIo, RejectsBadMagicAndTruncation) {
  const std::string path = TempPath("corrupt.gfrm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE this is not a matrix";
  }
  EXPECT_EQ(data::LoadMatrixBinary(path).status().code(),
            common::StatusCode::kDataLoss);

  // Valid file truncated mid-entries.
  const auto matrix = data::PaperExample2();
  ASSERT_TRUE(data::SaveMatrixBinary(matrix, path).ok());
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    content.assign((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path, std::ios::binary);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() - 7));
  }
  EXPECT_EQ(data::LoadMatrixBinary(path).status().code(),
            common::StatusCode::kDataLoss);

  // Trailing garbage is also rejected.
  {
    std::ofstream out(path, std::ios::binary);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out << "extra";
  }
  EXPECT_EQ(data::LoadMatrixBinary(path).status().code(),
            common::StatusCode::kDataLoss);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace groupform
