// RatingMatrix and its builder: CSR layout, lookups, validation, subsets.
#include <gtest/gtest.h>

#include "data/rating_matrix.h"

namespace groupform {
namespace {

using data::RatingMatrix;
using data::RatingMatrixBuilder;
using data::RatingScale;

TEST(RatingMatrixBuilder, BuildsSortedRowsFromUnsortedInput) {
  RatingMatrixBuilder builder(2, 4, RatingScale{1.0, 5.0});
  ASSERT_TRUE(builder.AddRating(1, 2, 3.0).ok());
  ASSERT_TRUE(builder.AddRating(0, 3, 5.0).ok());
  ASSERT_TRUE(builder.AddRating(0, 1, 2.0).ok());
  ASSERT_TRUE(builder.AddRating(1, 0, 4.0).ok());
  const RatingMatrix matrix = std::move(builder).Build();

  EXPECT_EQ(matrix.num_users(), 2);
  EXPECT_EQ(matrix.num_items(), 4);
  EXPECT_EQ(matrix.num_ratings(), 4);
  const auto row0 = matrix.RatingsOf(0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_EQ(row0[0].item, 1);
  EXPECT_EQ(row0[1].item, 3);
  EXPECT_DOUBLE_EQ(matrix.GetRating(1, 0).value(), 4.0);
  EXPECT_FALSE(matrix.GetRating(1, 3).has_value());
  EXPECT_DOUBLE_EQ(matrix.GetRatingOr(1, 3, -1.0), -1.0);
}

TEST(RatingMatrixBuilder, DuplicateKeepsLastValue) {
  RatingMatrixBuilder builder(1, 2, RatingScale{1.0, 5.0});
  ASSERT_TRUE(builder.AddRating(0, 1, 2.0).ok());
  ASSERT_TRUE(builder.AddRating(0, 1, 5.0).ok());
  const RatingMatrix matrix = std::move(builder).Build();
  EXPECT_EQ(matrix.num_ratings(), 1);
  EXPECT_DOUBLE_EQ(matrix.GetRating(0, 1).value(), 5.0);
}

TEST(RatingMatrixBuilder, RejectsOutOfRangeAndOffScale) {
  RatingMatrixBuilder builder(2, 2, RatingScale{1.0, 5.0});
  EXPECT_EQ(builder.AddRating(2, 0, 3.0).code(),
            common::StatusCode::kOutOfRange);
  EXPECT_EQ(builder.AddRating(-1, 0, 3.0).code(),
            common::StatusCode::kOutOfRange);
  EXPECT_EQ(builder.AddRating(0, 2, 3.0).code(),
            common::StatusCode::kOutOfRange);
  EXPECT_EQ(builder.AddRating(0, 0, 0.5).code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.AddRating(0, 0, 6.0).code(),
            common::StatusCode::kInvalidArgument);
}

TEST(RatingMatrix, FromDenseKeepsEveryCellAndChecksRaggedness) {
  const auto ok = RatingMatrix::FromDense({{1, 2}, {3, 4}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->num_ratings(), 4);
  EXPECT_DOUBLE_EQ(ok->Density(), 1.0);

  const auto ragged = RatingMatrix::FromDense({{1, 2}, {3}});
  EXPECT_FALSE(ragged.ok());
}

TEST(RatingMatrix, DensityOnSparseData) {
  RatingMatrixBuilder builder(4, 5, RatingScale{1.0, 5.0});
  ASSERT_TRUE(builder.AddRating(0, 0, 1.0).ok());
  ASSERT_TRUE(builder.AddRating(3, 4, 5.0).ok());
  const RatingMatrix matrix = std::move(builder).Build();
  EXPECT_DOUBLE_EQ(matrix.Density(), 2.0 / 20.0);
  EXPECT_EQ(matrix.NumRatingsOf(0), 1);
  EXPECT_EQ(matrix.NumRatingsOf(1), 0);
}

TEST(RatingMatrix, SubsetUsersReindexesInGivenOrder) {
  const auto matrix =
      RatingMatrix::FromDense({{1, 2}, {3, 4}, {5, 1}}).value();
  const auto subset = matrix.SubsetUsers({2, 0});
  ASSERT_TRUE(subset.ok());
  EXPECT_EQ(subset->num_users(), 2);
  EXPECT_DOUBLE_EQ(subset->GetRating(0, 0).value(), 5.0);  // old user 2
  EXPECT_DOUBLE_EQ(subset->GetRating(1, 1).value(), 2.0);  // old user 0

  EXPECT_FALSE(matrix.SubsetUsers({0, 0}).ok());  // duplicate
  EXPECT_FALSE(matrix.SubsetUsers({5}).ok());     // out of range
}

TEST(RatingMatrix, EmptyRowsAreServedAsEmptySpans) {
  RatingMatrixBuilder builder(3, 3, RatingScale{1.0, 5.0});
  ASSERT_TRUE(builder.AddRating(1, 1, 3.0).ok());
  const RatingMatrix matrix = std::move(builder).Build();
  EXPECT_TRUE(matrix.RatingsOf(0).empty());
  EXPECT_EQ(matrix.RatingsOf(1).size(), 1u);
  EXPECT_TRUE(matrix.RatingsOf(2).empty());
}

}  // namespace
}  // namespace groupform
