// Triplet / MovieLens loaders: parsing, re-indexing, clamping, round-trip.
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/loaders.h"

namespace groupform {
namespace {

TEST(ParseTriplets, BasicCsvWithReindexing) {
  data::LoaderOptions options;
  const auto matrix = data::ParseTriplets(
      "10,100,5\n"
      "10,200,3\n"
      "42,100,1\n",
      options);
  ASSERT_TRUE(matrix.ok()) << matrix.status();
  EXPECT_EQ(matrix->num_users(), 2);
  EXPECT_EQ(matrix->num_items(), 2);
  // First-appearance order: user 10 -> 0, user 42 -> 1; item 100 -> 0.
  EXPECT_DOUBLE_EQ(matrix->GetRating(0, 0).value(), 5.0);
  EXPECT_DOUBLE_EQ(matrix->GetRating(0, 1).value(), 3.0);
  EXPECT_DOUBLE_EQ(matrix->GetRating(1, 0).value(), 1.0);
}

TEST(ParseTriplets, HeaderCommentsAndExtraColumns) {
  data::LoaderOptions options;
  options.has_header = true;
  const auto matrix = data::ParseTriplets(
      "user,item,rating,timestamp\n"
      "# a comment line\n"
      "1,1,4,838985046\n"
      "2,1,2,838983421\n",
      options);
  ASSERT_TRUE(matrix.ok()) << matrix.status();
  EXPECT_EQ(matrix->num_ratings(), 2);
}

TEST(ParseTriplets, MalformedRowsFail) {
  data::LoaderOptions options;
  EXPECT_FALSE(data::ParseTriplets("1,2\n", options).ok());
  EXPECT_FALSE(data::ParseTriplets("a,2,3\n", options).ok());
  EXPECT_FALSE(data::ParseTriplets("1,2,x\n", options).ok());
}

TEST(ParseTriplets, ClampsOrRejectsOutOfScale) {
  data::LoaderOptions clamping;
  const auto clamped = data::ParseTriplets("1,1,9\n", clamping);
  ASSERT_TRUE(clamped.ok());
  EXPECT_DOUBLE_EQ(clamped->GetRating(0, 0).value(), 5.0);

  data::LoaderOptions strict;
  strict.clamp_out_of_scale = false;
  EXPECT_FALSE(data::ParseTriplets("1,1,9\n", strict).ok());
}

TEST(Loaders, MovieLensDoubleColonFormat) {
  const std::string path = testing::TempDir() + "/ratings.dat";
  {
    std::ofstream out(path);
    out << "1::122::5::838985046\n"
           "1::185::3.5::838983525\n"
           "2::122::3::868245920\n";
  }
  const auto matrix = data::LoadMovieLens(path);
  ASSERT_TRUE(matrix.ok()) << matrix.status();
  EXPECT_EQ(matrix->num_users(), 2);
  EXPECT_EQ(matrix->num_items(), 2);
  EXPECT_DOUBLE_EQ(matrix->GetRating(0, 1).value(), 3.5);
  std::remove(path.c_str());
}

TEST(Loaders, MissingFileReportsNotFound) {
  data::LoaderOptions options;
  EXPECT_EQ(data::LoadTripletFile("/no/such/file.csv", options)
                .status()
                .code(),
            common::StatusCode::kNotFound);
}

TEST(Loaders, SaveThenLoadRoundTrips) {
  const auto original = data::ParseTriplets("0,0,5\n0,1,2\n1,1,4\n",
                                            data::LoaderOptions());
  ASSERT_TRUE(original.ok());
  const std::string path = testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(data::SaveTripletFile(*original, path).ok());
  const auto reloaded = data::LoadTripletFile(path, data::LoaderOptions());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->num_ratings(), original->num_ratings());
  EXPECT_DOUBLE_EQ(reloaded->GetRating(0, 1).value(), 2.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace groupform
