// The routing ring's three contracts (DESIGN.md §16.2): deterministic
// placement, every worker owns a usable share of the keyspace, and
// growing the fleet N→N+1 moves only ~1/(N+1) of the keys.
#include "fleet/hash_ring.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/strings.h"

namespace groupform::fleet {
namespace {

std::vector<std::string> SampleKeys(int count) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    keys.push_back(common::StrFormat("dense:u%d:i%d:s%d", 100 + i,
                                     40 + i % 7, i * 31));
  }
  return keys;
}

TEST(HashRingTest, DeterministicAcrossInstances) {
  const HashRing a(4), b(4);
  for (const std::string& key : SampleKeys(200)) {
    EXPECT_EQ(a.WorkerFor(key), b.WorkerFor(key)) << key;
  }
}

TEST(HashRingTest, HashKeyIsPinned) {
  // Pinned constants (FNV-1a + murmur3 finalizer): the routing hash may
  // never drift across stdlib or compiler versions, or a rolling fleet
  // restart reshuffles every cache.
  EXPECT_EQ(HashRing::HashKey(""), 0xefd01f60ba992926ull);
  EXPECT_EQ(HashRing::HashKey("a"), 0x82a2a958a9bece5bull);
  EXPECT_EQ(HashRing::HashKey("groupform"), HashRing::HashKey("groupform"));
  EXPECT_NE(HashRing::HashKey("groupform"), HashRing::HashKey("groupforn"));
}

TEST(HashRingTest, TrailingCounterKeysSpread) {
  // The regression that motivated the finalizer: cache keys that differ
  // only in a trailing counter ("…:s100", "…:s101", …) must not pile
  // onto one worker (raw FNV-1a put all of them within a few multiples
  // of the prime — one arc, one worker).
  const int workers = 2;
  const HashRing ring(workers);
  std::vector<int> hits(workers, 0);
  for (int seed = 0; seed < 64; ++seed) {
    ++hits[static_cast<std::size_t>(
        ring.WorkerFor(common::StrFormat("dense:6x4:c2:s%d", seed)))];
  }
  for (int worker = 0; worker < workers; ++worker) {
    EXPECT_GT(hits[static_cast<std::size_t>(worker)], 8) << worker;
  }
}

TEST(HashRingTest, SingleWorkerOwnsEverything) {
  const HashRing ring(1);
  for (const std::string& key : SampleKeys(50)) {
    EXPECT_EQ(ring.WorkerFor(key), 0);
  }
}

TEST(HashRingTest, EveryWorkerOwnsAShare) {
  const int workers = 4;
  const HashRing ring(workers);
  std::vector<int> hits(workers, 0);
  const auto keys = SampleKeys(1000);
  for (const std::string& key : keys) {
    const int worker = ring.WorkerFor(key);
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, workers);
    ++hits[static_cast<std::size_t>(worker)];
  }
  // With 64 virtual nodes each, no worker should be starved or hog the
  // ring; a loose band keeps this a contract, not a flake.
  for (int worker = 0; worker < workers; ++worker) {
    EXPECT_GT(hits[static_cast<std::size_t>(worker)], 50) << worker;
    EXPECT_LT(hits[static_cast<std::size_t>(worker)], 600) << worker;
  }
}

TEST(HashRingTest, GrowingTheFleetMovesAboutOneOverNKeys) {
  for (const int n : {2, 4, 8}) {
    const HashRing before(n), after(n + 1);
    const auto keys = SampleKeys(2000);
    int moved = 0;
    for (const std::string& key : keys) {
      const int from = before.WorkerFor(key);
      const int to = after.WorkerFor(key);
      if (from != to) {
        ++moved;
        // Consistent hashing only ever moves keys *to* the new worker;
        // a key hopping between surviving workers would mean the ring
        // is really modular hashing in disguise.
        EXPECT_EQ(to, n) << key;
      }
    }
    const double expected = static_cast<double>(keys.size()) / (n + 1);
    EXPECT_GT(moved, expected * 0.5) << "n=" << n;
    EXPECT_LT(moved, expected * 2.0) << "n=" << n;
  }
}

}  // namespace
}  // namespace groupform::fleet
