// WorkerFleet against the real groupform_serverd binary: spawn on
// ephemeral ports, health-check over the binary wire, serve a request
// end-to-end through a broker, SIGKILL a worker and watch the broker
// degrade to ERR(UNAVAILABLE). Skips (not fails) when the serverd
// binary isn't built next to the test tree.
#include "fleet/supervisor.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <string>

#include "common/status.h"
#include "common/thread_pool.h"
#include "fleet/broker.h"
#include "fleet/transport.h"
#include "serve/protocol.h"
#include "solvers/builtin.h"

namespace groupform::fleet {
namespace {

/// build/tests/<test> → build/tools/groupform_serverd, or "" if absent.
std::string ServerdPath() {
  char buffer[4096];
  const ssize_t len =
      ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (len <= 0) return "";
  std::string path(buffer, static_cast<std::size_t>(len));
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return "";
  path = path.substr(0, slash) + "/../tools/groupform_serverd";
  return ::access(path.c_str(), X_OK) == 0 ? path : "";
}

serve::Request SmallRequest(const std::string& id, std::uint64_t seed) {
  serve::Request request;
  request.id = id;
  request.solver = "greedy";
  request.instance.kind = "dense";
  request.instance.users = 6;
  request.instance.items = 4;
  request.instance.clusters = 2;
  request.instance.seed = seed;
  request.problem.k = 2;
  request.problem.groups = 2;
  return request;
}

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    solvers::EnsureBuiltinSolversRegistered();
    if (ServerdPath().empty()) {
      GTEST_SKIP() << "groupform_serverd not built; skipping";
    }
  }
  void TearDown() override {
    common::ThreadPool::SetDefaultThreadCount(0);
  }
};

TEST_F(SupervisorTest, SpawnHealthCheckServeKillStop) {
  WorkerFleet::Options options;
  options.serverd_path = ServerdPath();
  options.num_workers = 2;
  options.threads = 1;  // keep the 2-worker fleet cheap on small boxes
  auto fleet_or = WorkerFleet::Spawn(options);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status();
  WorkerFleet fleet = std::move(*fleet_or);
  ASSERT_EQ(fleet.endpoints().size(), 2u);
  for (const Endpoint& endpoint : fleet.endpoints()) {
    EXPECT_GT(endpoint.port, 0);
  }
  ASSERT_TRUE(fleet.HealthCheck().ok());

  TcpTransport transport(fleet.endpoints(),
                         serve::WireClient::Wire::kBinary);
  BrokerConfig config;
  config.retries = 1;
  config.backoff_ms = 1;
  BrokerSession broker(config, transport);
  const auto now = std::chrono::steady_clock::now();

  // Both workers answer real solves through the broker.
  int per_worker_ok[2] = {0, 0};
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const serve::Request request = SmallRequest("s", 50 + seed);
    const auto response = serve::ParseResponseLine(
        broker.HandleLine(serve::RenderRequest(request), now));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->state, eval::SweepCellState::kOk)
        << response->status;
    ++per_worker_ok[broker.ring().WorkerFor(
        request.instance.CanonicalKey())];
  }
  EXPECT_GT(per_worker_ok[0] + per_worker_ok[1], 0);

  // SIGKILL worker 0; keys it owns must degrade to ERR(UNAVAILABLE)
  // while worker 1 keeps answering OK.
  ASSERT_TRUE(fleet.Kill(0).ok());
  int ok = 0, unavailable = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const serve::Request request = SmallRequest("k", 80 + seed);
    const auto response = serve::ParseResponseLine(
        broker.HandleLine(serve::RenderRequest(request), now));
    ASSERT_TRUE(response.ok()) << response.status();
    const int owner =
        broker.ring().WorkerFor(request.instance.CanonicalKey());
    if (owner == 0) {
      EXPECT_EQ(response->state, eval::SweepCellState::kErr);
      EXPECT_EQ(response->status.code(),
                common::StatusCode::kUnavailable)
          << response->status;
      ++unavailable;
    } else {
      EXPECT_EQ(response->state, eval::SweepCellState::kOk)
          << response->status;
      ++ok;
    }
  }
  EXPECT_EQ(ok + unavailable, 8);

  // Workers drain client connections before exiting on SIGTERM; release
  // the broker's pooled connections so Stop()'s waitpid can complete.
  transport.Reset(0);
  transport.Reset(1);
  fleet.Stop();  // idempotent with the destructor
}

TEST_F(SupervisorTest, SpawnFailsCleanlyOnBadBinary) {
  WorkerFleet::Options options;
  options.serverd_path = "/nonexistent/groupform_serverd";
  options.num_workers = 1;
  options.spawn_timeout_ms = 2000;
  const auto fleet_or = WorkerFleet::Spawn(options);
  EXPECT_FALSE(fleet_or.ok());
}

}  // namespace
}  // namespace groupform::fleet
