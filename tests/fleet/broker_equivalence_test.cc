// Broker transparency (DESIGN.md §16): a BrokerSession fronting real
// groupform_serverd-equivalent workers answers byte-identical response
// documents to a single local Session — every fleet size, both
// broker→worker wires, both routing modes, for every response shape the
// protocol produces (fresh solves, cache hits, groups, deltas, a DNF,
// an ERR) plus the batch envelope. The workers here are in-process
// TcpServers around ordinary Sessions, i.e. exactly what a serverd
// process wraps, minus fork/exec (supervisor_test covers that).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "fleet/broker.h"
#include "fleet/transport.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "solvers/builtin.h"

namespace groupform::fleet {
namespace {

serve::Request BaseRequest(const std::string& id, std::uint64_t seed) {
  serve::Request request;
  request.id = id;
  request.solver = "greedy";
  request.instance.kind = "dense";
  request.instance.users = 8;
  request.instance.items = 5;
  request.instance.clusters = 2;
  request.instance.seed = seed;
  request.problem.k = 2;
  request.problem.groups = 3;
  return request;
}

/// Same vocabulary as the serve wire-equivalence set, over three
/// distinct instances so affinity routing actually spreads the keys.
std::vector<serve::Request> MixedRequests() {
  std::vector<serve::Request> requests;
  requests.push_back(BaseRequest("fresh", 4));
  requests.push_back(BaseRequest("hit", 4));
  serve::Request groups = BaseRequest("groups", 4);
  groups.include_groups = true;
  requests.push_back(groups);
  serve::Request local = BaseRequest("local", 4);
  local.solver = "localsearch";  // scatter-ineligible → affinity path
  requests.push_back(local);
  requests.push_back(BaseRequest("other", 9));
  requests.push_back(BaseRequest("third", 23));
  serve::Request capped = BaseRequest("capped", 4);
  capped.user_cap = 4;  // 8 users > cap → DNF
  requests.push_back(capped);
  serve::Request unknown = BaseRequest("unknown", 4);
  unknown.solver = "no-such-solver";  // → ERR(NOT_FOUND)
  requests.push_back(unknown);
  serve::Request delta = BaseRequest("delta", 4);
  delta.is_delta = true;
  delta.deltas.push_back(
      {core::PopulationDelta::Kind::kRemoveUser, 3, 0, 0.0});
  requests.push_back(delta);
  serve::Request delta2 = BaseRequest("delta2", 9);
  delta2.is_delta = true;
  delta2.deltas.push_back({core::PopulationDelta::Kind::kRerate, 1, 2, 3.0});
  requests.push_back(delta2);
  // Constraint-bearing (DESIGN.md §17): the constraints object must ride
  // the broker→worker wire and the partition must come back verbatim.
  serve::Request constrained = BaseRequest("constrained", 4);
  constrained.solver = "capgreedy";
  constrained.problem.constraints.min_group_size = 2;
  constrained.problem.constraints.max_group_size = 4;
  constrained.include_groups = true;
  requests.push_back(constrained);
  // Anytime partial (§17.4): a zero budget answers the greedy-seed
  // snapshot with partial=true — wall-clock free, so byte-stable here.
  serve::Request partial = BaseRequest("partial", 4);
  partial.solver = "anytime:localsearch";
  partial.options.Set("deadline_ms", "0");
  requests.push_back(partial);
  return requests;
}

std::vector<std::string> RenderAll(
    const std::vector<serve::Request>& requests) {
  std::vector<std::string> lines;
  lines.reserve(requests.size());
  for (const serve::Request& request : requests) {
    lines.push_back(serve::RenderRequest(request));
  }
  return lines;
}

/// An in-process stand-in for one serverd worker: its own Session behind
/// a real TcpServer on an ephemeral loopback port.
struct Worker {
  std::unique_ptr<serve::Session> session;
  std::unique_ptr<serve::TcpServer> server;
  std::thread serving;

  Worker() {
    session = std::make_unique<serve::Session>();
    serve::ServerConfig config;
    config.port = 0;
    config.max_inflight = 4;
    server = std::make_unique<serve::TcpServer>(*session, config);
  }

  void Stop() {
    if (server != nullptr) server->Shutdown();
    if (serving.joinable()) serving.join();
  }
  ~Worker() { Stop(); }
};

class BrokerEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    solvers::EnsureBuiltinSolversRegistered();
    common::ThreadPool::SetDefaultThreadCount(2);
  }
  void TearDown() override {
    common::ThreadPool::SetDefaultThreadCount(0);
  }

  static std::vector<std::unique_ptr<Worker>> StartWorkers(int count) {
    std::vector<std::unique_ptr<Worker>> workers;
    for (int i = 0; i < count; ++i) {
      auto worker = std::make_unique<Worker>();
      EXPECT_TRUE(worker->server->Start().ok());
      serve::TcpServer* server = worker->server.get();
      worker->serving = std::thread([server] {
        const auto status = server->Serve();
        EXPECT_TRUE(status.ok()) << status.ToString();
      });
      workers.push_back(std::move(worker));
    }
    return workers;
  }

  static std::vector<Endpoint> EndpointsOf(
      const std::vector<std::unique_ptr<Worker>>& workers) {
    std::vector<Endpoint> endpoints;
    for (const auto& worker : workers) {
      endpoints.push_back({"127.0.0.1", worker->server->port()});
    }
    return endpoints;
  }
};

TEST_F(BrokerEquivalenceTest, FleetMatchesSingleProcessByteForByte) {
  const std::vector<std::string> lines = RenderAll(MixedRequests());
  const auto now = std::chrono::steady_clock::now();

  // Golden: one local Session, strictly sequential — the bytes a client
  // of a single groupform_serverd would read back.
  std::vector<std::string> golden;
  {
    serve::Session session;
    for (const std::string& line : lines) {
      golden.push_back(session.HandleLine(line, now));
    }
  }

  for (const int num_workers : {1, 2, 4}) {
    for (const auto wire : {serve::WireClient::Wire::kJson,
                            serve::WireClient::Wire::kBinary}) {
      for (const auto mode : {BrokerConfig::Mode::kAffinity,
                              BrokerConfig::Mode::kScatter}) {
        SCOPED_TRACE(testing::Message()
                     << "workers=" << num_workers << " wire="
                     << (wire == serve::WireClient::Wire::kJson ? "json"
                                                                : "binary")
                     << " mode="
                     << (mode == BrokerConfig::Mode::kAffinity
                             ? "affinity"
                             : "scatter"));
        auto workers = StartWorkers(num_workers);
        TcpTransport transport(EndpointsOf(workers), wire);
        BrokerConfig config;
        config.mode = mode;
        config.retries = 1;
        config.backoff_ms = 1;
        config.residual_shard_items = 2;  // force multi-shard residuals
        BrokerSession broker(config, transport);

        for (std::size_t i = 0; i < lines.size(); ++i) {
          EXPECT_EQ(broker.HandleLine(lines[i], now), golden[i])
              << "request " << i;
        }
        // Workers only drain once the broker's pooled connections close:
        // drop them before the servers shut down (scope exit then
        // destroys broker → transport → workers, in that order).
        for (int w = 0; w < num_workers; ++w) transport.Reset(w);
      }
    }
  }
}

TEST_F(BrokerEquivalenceTest, BatchEnvelopeMatchesSingleProcess) {
  serve::BatchRequest batch;
  batch.id = "b-7";
  batch.requests = MixedRequests();
  const std::string batch_line = serve::RenderBatchRequest(batch);
  const auto now = std::chrono::steady_clock::now();

  std::string golden;
  {
    serve::Session session;
    golden = session.HandleLine(batch_line, now);
  }

  for (const auto mode :
       {BrokerConfig::Mode::kAffinity, BrokerConfig::Mode::kScatter}) {
    SCOPED_TRACE(mode == BrokerConfig::Mode::kAffinity ? "affinity"
                                                       : "scatter");
    auto workers = StartWorkers(2);
    TcpTransport transport(EndpointsOf(workers),
                           serve::WireClient::Wire::kBinary);
    BrokerConfig config;
    config.mode = mode;
    config.backoff_ms = 1;
    BrokerSession broker(config, transport);
    EXPECT_EQ(broker.HandleLine(batch_line, now), golden);
    for (int w = 0; w < 2; ++w) transport.Reset(w);
  }
}

TEST_F(BrokerEquivalenceTest, MalformedLineAnswersSameErrAsWorker) {
  const auto now = std::chrono::steady_clock::now();
  serve::Session session;
  auto workers = StartWorkers(1);
  TcpTransport transport(EndpointsOf(workers),
                         serve::WireClient::Wire::kBinary);
  BrokerConfig config;
  BrokerSession broker(config, transport);
  for (const std::string line :
       {std::string("{not json"), std::string("{\"schema\":\"nope/9\"}")}) {
    EXPECT_EQ(broker.HandleLine(line, now), session.HandleLine(line, now))
        << line;
  }
}

}  // namespace
}  // namespace groupform::fleet
