// The broker's failure policy (DESIGN.md §16.5): a dead worker answers
// its requests with ERR(UNAVAILABLE) after the bounded retry — the
// stream never hangs — and a worker that comes back is picked up on the
// next call through a fresh connection. Also pins the client-side
// mapping this rests on: connecting to a closed port is UNAVAILABLE,
// not a generic I/O error.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "fleet/broker.h"
#include "fleet/transport.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "solvers/builtin.h"

namespace groupform::fleet {
namespace {

serve::Request SmallRequest(const std::string& id) {
  serve::Request request;
  request.id = id;
  request.solver = "greedy";
  request.instance.kind = "dense";
  request.instance.users = 6;
  request.instance.items = 4;
  request.instance.clusters = 2;
  request.instance.seed = 11;
  request.problem.k = 2;
  request.problem.groups = 2;
  return request;
}

class BrokerFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    solvers::EnsureBuiltinSolversRegistered();
    common::ThreadPool::SetDefaultThreadCount(2);
  }
  void TearDown() override {
    common::ThreadPool::SetDefaultThreadCount(0);
  }
};

TEST_F(BrokerFailureTest, ConnectToClosedPortIsUnavailable) {
  // Bind-then-close so the port is known free: nothing listens on it.
  int closed_port = 0;
  {
    serve::Session session;
    serve::ServerConfig config;
    config.port = 0;
    serve::TcpServer server(session, config);
    ASSERT_TRUE(server.Start().ok());
    closed_port = server.port();
    server.Shutdown();
  }
  const auto client_or = serve::WireClient::Connect(
      "127.0.0.1", closed_port, serve::WireClient::Wire::kBinary);
  ASSERT_FALSE(client_or.ok());
  EXPECT_EQ(client_or.status().code(), common::StatusCode::kUnavailable)
      << client_or.status();
}

TEST_F(BrokerFailureTest, DeadWorkerAnswersErrUnavailableWithoutHanging) {
  serve::Session session;
  serve::ServerConfig config;
  config.port = 0;
  config.max_inflight = 4;
  auto server = std::make_unique<serve::TcpServer>(session, config);
  ASSERT_TRUE(server->Start().ok());
  serve::TcpServer* raw = server.get();
  std::thread serving([raw] {
    const auto status = raw->Serve();
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  const int port = server->port();

  TcpTransport transport({{"127.0.0.1", port}},
                         serve::WireClient::Wire::kBinary);
  BrokerConfig broker_config;
  broker_config.retries = 1;
  broker_config.backoff_ms = 1;
  BrokerSession broker(broker_config, transport);
  const auto now = std::chrono::steady_clock::now();

  // Alive: an ordinary OK round trip through the fleet.
  const std::string ok_line =
      broker.HandleLine(serve::RenderRequest(SmallRequest("alive")), now);
  const auto ok_response = serve::ParseResponseLine(ok_line);
  ASSERT_TRUE(ok_response.ok()) << ok_response.status();
  EXPECT_EQ(ok_response->state, eval::SweepCellState::kOk);

  // Kill the only worker. (The pooled connection must drop first:
  // TcpServer::Serve drains connections before returning, and a SIGKILLed
  // process — the real dead-worker case, supervisor_test — closes its
  // sockets as a side effect.) Every subsequent request must answer —
  // not hang — with ERR(UNAVAILABLE) after the single bounded retry.
  transport.Reset(0);
  server->Shutdown();
  serving.join();
  server.reset();

  for (const char* id : {"down-1", "down-2"}) {
    const std::string err_line =
        broker.HandleLine(serve::RenderRequest(SmallRequest(id)), now);
    const auto err_response = serve::ParseResponseLine(err_line);
    ASSERT_TRUE(err_response.ok()) << err_response.status();
    EXPECT_EQ(err_response->id, id);
    EXPECT_EQ(err_response->state, eval::SweepCellState::kErr);
    EXPECT_EQ(err_response->status.code(),
              common::StatusCode::kUnavailable)
        << err_response->status;
  }

  // A replacement worker on the same port is picked up by the next call
  // (the transport reconnects from scratch after a failure).
  serve::Session session2;
  serve::ServerConfig config2;
  config2.port = port;
  config2.max_inflight = 4;
  serve::TcpServer revived(session2, config2);
  ASSERT_TRUE(revived.Start().ok());
  std::thread serving2([&revived] {
    const auto status = revived.Serve();
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  const std::string back_line =
      broker.HandleLine(serve::RenderRequest(SmallRequest("back")), now);
  const auto back_response = serve::ParseResponseLine(back_line);
  ASSERT_TRUE(back_response.ok()) << back_response.status();
  EXPECT_EQ(back_response->state, eval::SweepCellState::kOk);
  transport.Reset(0);  // release the connection so Serve() can drain
  revived.Shutdown();
  serving2.join();
}

TEST_F(BrokerFailureTest, OtherWorkersUnaffectedByOneDeadWorker) {
  // Two workers; kill one; every request still answers (OK when routed
  // to the live worker, ERR(UNAVAILABLE) when routed to the dead one),
  // and at least one of a spread of instance keys lands on each side.
  std::vector<std::unique_ptr<serve::Session>> sessions;
  std::vector<std::unique_ptr<serve::TcpServer>> servers;
  std::vector<std::thread> serving;
  for (int i = 0; i < 2; ++i) {
    sessions.push_back(std::make_unique<serve::Session>());
    serve::ServerConfig config;
    config.port = 0;
    config.max_inflight = 4;
    servers.push_back(
        std::make_unique<serve::TcpServer>(*sessions.back(), config));
    ASSERT_TRUE(servers.back()->Start().ok());
    serve::TcpServer* raw = servers.back().get();
    serving.emplace_back([raw] { (void)raw->Serve(); });
  }
  TcpTransport transport({{"127.0.0.1", servers[0]->port()},
                          {"127.0.0.1", servers[1]->port()}},
                         serve::WireClient::Wire::kBinary);
  BrokerConfig broker_config;
  broker_config.retries = 1;
  broker_config.backoff_ms = 1;
  BrokerSession broker(broker_config, transport);
  const auto now = std::chrono::steady_clock::now();

  servers[1]->Shutdown();
  serving[1].join();
  servers[1].reset();

  int ok = 0, unavailable = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    serve::Request request = SmallRequest("spread");
    request.instance.seed = 100 + seed;  // distinct cache keys
    const std::string line =
        broker.HandleLine(serve::RenderRequest(request), now);
    const auto response = serve::ParseResponseLine(line);
    ASSERT_TRUE(response.ok()) << response.status();
    if (response->state == eval::SweepCellState::kOk) {
      ++ok;
    } else {
      EXPECT_EQ(response->status.code(), common::StatusCode::kUnavailable);
      ++unavailable;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(unavailable, 0);
  transport.Reset(0);  // release the connection so Serve() can drain
  transport.Reset(1);
  servers[0]->Shutdown();
  serving[0].join();
}

}  // namespace
}  // namespace groupform::fleet
