// The simulated AMT study (§7.3): pool generation, the paper's similarity
#include <cmath>
// formula, sample selection, and the end-to-end study.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "userstudy/amt_simulator.h"

namespace groupform {
namespace {

using userstudy::AmtSimulator;

AmtSimulator::Options SmallOptions() {
  AmtSimulator::Options options;
  options.num_workers = 30;
  options.raters_per_hit = 10;
  options.seed = 2015;
  return options;
}

TEST(AmtSimulator, WorkerPoolShapeAndScale) {
  const AmtSimulator sim(SmallOptions());
  const auto pool = sim.GenerateWorkerPool();
  EXPECT_EQ(pool.num_users(), 30);
  EXPECT_EQ(pool.num_items(), 10);
  EXPECT_DOUBLE_EQ(pool.Density(), 1.0);
  for (UserId w = 0; w < pool.num_users(); ++w) {
    for (const auto& e : pool.RatingsOf(w)) {
      EXPECT_GE(e.rating, 1.0);
      EXPECT_LE(e.rating, 5.0);
      EXPECT_DOUBLE_EQ(e.rating, std::round(e.rating));
    }
  }
}

TEST(AmtSimulator, PairSimilarityIsOneForIdenticalRaters) {
  // Two workers with byte-identical profiles must have similarity 1 and
  // dissimilar profiles must score lower.
  const auto matrix = data::RatingMatrix::FromDense(
      {{5, 4, 3, 2, 1}, {5, 4, 3, 2, 1}, {1, 2, 3, 4, 5}},
      data::RatingScale{1.0, 5.0});
  ASSERT_TRUE(matrix.ok());
  const double same = AmtSimulator::PairSimilarity(*matrix, 0, 1);
  const double opposed = AmtSimulator::PairSimilarity(*matrix, 0, 2);
  EXPECT_DOUBLE_EQ(same, 1.0);
  EXPECT_LT(opposed, same);
}

TEST(AmtSimulator, SamplesAreDistinctUsersOfRequestedSize) {
  const AmtSimulator sim(SmallOptions());
  const auto pool = sim.GenerateWorkerPool();
  for (const auto kind :
       {AmtSimulator::SampleKind::kSimilar,
        AmtSimulator::SampleKind::kDissimilar,
        AmtSimulator::SampleKind::kRandom}) {
    const auto sample = sim.SelectSample(pool, kind);
    EXPECT_EQ(sample.size(), 10u);
    const std::set<UserId> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), sample.size());
    for (UserId u : sample) {
      EXPECT_GE(u, 0);
      EXPECT_LT(u, pool.num_users());
    }
  }
}

TEST(AmtSimulator, SimilarSampleIsMoreCoherentThanDissimilar) {
  const AmtSimulator sim(SmallOptions());
  const auto pool = sim.GenerateWorkerPool();
  const auto mean_sim = [&](const std::vector<UserId>& sample) {
    double total = 0.0;
    int pairs = 0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      for (std::size_t j = i + 1; j < sample.size(); ++j) {
        total += AmtSimulator::PairSimilarity(pool, sample[i], sample[j]);
        ++pairs;
      }
    }
    return total / pairs;
  };
  const double similar =
      mean_sim(sim.SelectSample(pool, AmtSimulator::SampleKind::kSimilar));
  const double dissimilar = mean_sim(
      sim.SelectSample(pool, AmtSimulator::SampleKind::kDissimilar));
  EXPECT_GT(similar, dissimilar);
}

TEST(AmtSimulator, StudyProducesSixHitsWithSaneNumbers) {
  const AmtSimulator sim(SmallOptions());
  const auto study = sim.Run();
  ASSERT_TRUE(study.ok()) << study.status();
  ASSERT_EQ(study->hits.size(), 6u);  // 3 sample kinds x {Min, Sum}
  for (const auto& hit : study->hits) {
    EXPECT_GE(hit.avg_satisfaction_grd, 1.0);
    EXPECT_LE(hit.avg_satisfaction_grd, 5.0);
    EXPECT_GE(hit.avg_satisfaction_baseline, 1.0);
    EXPECT_LE(hit.avg_satisfaction_baseline, 5.0);
    EXPECT_GE(hit.prefer_grd_fraction, 0.0);
    EXPECT_LE(hit.prefer_grd_fraction, 1.0);
    EXPECT_GE(hit.stderr_grd, 0.0);
  }
  EXPECT_GE(study->prefer_grd_min_pct, 0.0);
  EXPECT_LE(study->prefer_grd_min_pct, 100.0);
}

TEST(AmtSimulator, GrdAtLeastMatchesBaselineSatisfactionOnAverage) {
  // The paper's Figure 7 claim, in expectation over the six HITs.
  const AmtSimulator sim(SmallOptions());
  const auto study = sim.Run();
  ASSERT_TRUE(study.ok());
  double grd_total = 0.0;
  double base_total = 0.0;
  for (const auto& hit : study->hits) {
    grd_total += hit.avg_satisfaction_grd;
    base_total += hit.avg_satisfaction_baseline;
  }
  EXPECT_GE(grd_total, base_total - 1e-9);
}

TEST(AmtSimulator, DeterministicForFixedSeed) {
  const AmtSimulator a(SmallOptions());
  const AmtSimulator b(SmallOptions());
  const auto sa = a.Run();
  const auto sb = b.Run();
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  for (std::size_t i = 0; i < sa->hits.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa->hits[i].avg_satisfaction_grd,
                     sb->hits[i].avg_satisfaction_grd);
    EXPECT_DOUBLE_EQ(sa->hits[i].prefer_grd_fraction,
                     sb->hits[i].prefer_grd_fraction);
  }
}

}  // namespace
}  // namespace groupform
