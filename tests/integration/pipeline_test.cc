// End-to-end pipeline: generate sparse data -> train a predictor ->
// densify -> snapshot to disk -> reload -> form groups (several solvers)
// -> evaluate -> expand with overlaps. Exercises the seams between the
// modules rather than any one module.
#include <cstdio>

#include <gtest/gtest.h>

#include "baseline/cluster_baseline.h"
#include "core/constrained.h"
#include "core/greedy.h"
#include "core/incremental.h"
#include "core/overlap.h"
#include "data/binary_io.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "eval/weighted_objective.h"
#include "exact/local_search.h"
#include "recsys/matrix_factorization.h"
#include "recsys/predictor.h"

namespace groupform {
namespace {

TEST(Pipeline, SparseToPredictedToFormedToEvaluated) {
  // 1. Sparse explicit feedback.
  auto config = data::YahooMusicLikeConfig(400, 120, /*seed=*/606);
  config.min_ratings_per_user = 10;
  config.max_ratings_per_user = 30;
  const auto sparse = data::GenerateLatentFactor(config);
  ASSERT_LT(sparse.Density(), 0.3);

  // 2. Train MF, densify the popular head with predictions.
  recsys::MfPredictor::Options mf_options;
  mf_options.num_epochs = 10;
  const recsys::MfPredictor predictor(sparse, mf_options);
  const auto dense = recsys::DensifyWithPredictions(sparse, predictor, 40);
  ASSERT_GT(dense.num_ratings(), sparse.num_ratings());

  // 3. Snapshot to disk and reload; formation must be identical on both.
  const std::string path = testing::TempDir() + "/pipeline.gfrm";
  ASSERT_TRUE(data::SaveMatrixBinary(dense, path).ok());
  const auto reloaded = data::LoadMatrixBinary(path);
  ASSERT_TRUE(reloaded.ok());
  std::remove(path.c_str());

  core::FormationProblem problem;
  problem.matrix = &dense;
  problem.semantics = grouprec::Semantics::kLeastMisery;
  problem.aggregation = grouprec::Aggregation::kMax;
  problem.k = 5;
  problem.max_groups = 12;
  core::FormationProblem reloaded_problem = problem;
  reloaded_problem.matrix = &*reloaded;

  const auto formed = core::RunGreedy(problem);
  const auto formed_reloaded = core::RunGreedy(reloaded_problem);
  ASSERT_TRUE(formed.ok());
  ASSERT_TRUE(formed_reloaded.ok());
  EXPECT_DOUBLE_EQ(formed->objective, formed_reloaded->objective);

  // 4. The solution validates, and the solver ladder behaves.
  EXPECT_TRUE(core::ValidatePartition(problem, *formed).ok());
  const auto refined = exact::LocalSearchSolver(problem).Run();
  ASSERT_TRUE(refined.ok());
  EXPECT_GE(refined->objective, formed->objective - 1e-9);
  const auto clustered = baseline::RunBaseline(problem);
  ASSERT_TRUE(clustered.ok());
  EXPECT_GE(formed->objective, clustered->objective - 1e-9);

  // 5. Metrics are finite and consistent.
  EXPECT_GT(eval::AvgGroupSatisfaction(problem, *formed), 0.0);
  EXPECT_GT(eval::MeanPerUserSatisfaction(problem, *formed),
            dense.scale().min - 1e-9);
  const double ndcg = eval::MeanUserNdcg(problem, *formed);
  EXPECT_GT(ndcg, 0.0);
  EXPECT_LE(ndcg, 1.0 + 1e-9);

  // 6. Overlap expansion only improves per-user coverage.
  core::OverlapOptions overlap_options;
  overlap_options.min_ndcg = 0.6;
  const auto overlap =
      core::ExpandWithOverlaps(problem, *formed, overlap_options);
  ASSERT_TRUE(overlap.ok());
  EXPECT_GE(overlap->mean_best_ndcg, ndcg - 1e-9);
}

TEST(Pipeline, IncrementalRoundsTrackArrivalsAndDepartures) {
  // Operational loop: nightly formation over a changing population.
  const auto matrix = data::GenerateLatentFactor(
      data::YahooMusicLikeConfig(300, 80, /*seed=*/707));
  core::FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = grouprec::Semantics::kAggregateVoting;
  problem.aggregation = grouprec::Aggregation::kMin;
  problem.k = 4;
  problem.max_groups = 10;

  core::IncrementalFormer former(problem);
  // Night 1: first 200 users signed up.
  for (UserId u = 0; u < 200; ++u) ASSERT_TRUE(former.AddUser(u).ok());
  const auto night1 = former.Form();
  ASSERT_TRUE(night1.ok());
  // Night 2: 100 arrivals, 50 departures.
  for (UserId u = 200; u < 300; ++u) ASSERT_TRUE(former.AddUser(u).ok());
  for (UserId u = 0; u < 50; ++u) ASSERT_TRUE(former.RemoveUser(u).ok());
  const auto night2 = former.Form();
  ASSERT_TRUE(night2.ok());
  EXPECT_EQ(former.num_active(), 250);
  // Both nights produced at most ell groups covering the active users.
  std::int64_t covered = 0;
  for (const auto& g : night2->groups) {
    covered += static_cast<std::int64_t>(g.members.size());
  }
  EXPECT_EQ(covered, 250);
  EXPECT_LE(night2->num_groups(), 10);
}

TEST(Pipeline, ConstrainedFormationFeedsTheGroupBudget) {
  const auto matrix = data::GenerateLatentFactor(
      data::YahooMusicLikeConfig(240, 60, /*seed=*/808));
  core::FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = grouprec::Semantics::kLeastMisery;
  problem.aggregation = grouprec::Aggregation::kMax;
  problem.k = 5;
  problem.max_groups = 12;
  core::SizeConstraints constraints;
  constraints.min_group_size = 8;
  constraints.max_group_size = 40;
  const auto result = core::RunSizeConstrainedGreedy(problem, constraints);
  ASSERT_TRUE(result.ok()) << result.status();
  for (const auto& g : result->groups) {
    EXPECT_GE(g.members.size(), 8u);
    EXPECT_LE(g.members.size(), 40u);
  }
  // The weighted view of the same result is consistent with the plain one.
  const double uniform = eval::WeightedSumObjective(
      problem, *result, grouprec::PositionWeighting::kUniform);
  const double discounted = eval::WeightedSumObjective(
      problem, *result, grouprec::PositionWeighting::kLogInverse);
  EXPECT_GE(uniform, discounted);
}

}  // namespace
}  // namespace groupform
