// Malformed `groupform.delta/1` hardening: every bad sequence — whether
// it fails wire validation (int32-wrap ids, wrong arity, unknown ops) or
// semantic validation in core::ApplyDeltas (inactive users, out-of-range
// items, off-scale ratings) — answers ERR(INVALID_ARGUMENT) on the wire.
// Nothing in this file may reach a GF_CHECK abort: a hostile client must
// not be able to take the server down with a crafted delta line.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/status.h"
#include "serve/protocol.h"
#include "serve/session.h"
#include "solvers/builtin.h"

namespace groupform::serve {
namespace {

using Kind = core::PopulationDelta::Kind;

/// A valid 12-user / 6-item delta request carrying `deltas`.
Request BaseRequest(std::vector<core::PopulationDelta> deltas) {
  Request request;
  request.id = "hard";
  request.solver = "greedy";
  request.is_delta = true;
  request.deltas = std::move(deltas);
  request.instance.kind = "dense";
  request.instance.users = 12;
  request.instance.items = 6;
  request.instance.clusters = 2;
  request.instance.seed = 7;
  request.problem.k = 3;
  request.problem.groups = 4;
  return request;
}

class DeltaHardeningTest : public ::testing::Test {
 protected:
  void SetUp() override { solvers::EnsureBuiltinSolversRegistered(); }

  /// Runs `line` through the full parse+execute path and expects an
  /// ERR(INVALID_ARGUMENT) response whose message contains `needle`.
  void ExpectInvalid(const std::string& line, const std::string& needle) {
    const std::string rendered = session_.HandleLine(line);
    const auto response = ParseResponseLine(rendered);
    ASSERT_TRUE(response.ok()) << response.status() << "\n" << rendered;
    EXPECT_EQ(response->state, eval::SweepCellState::kErr) << rendered;
    EXPECT_EQ(response->status.code(),
              common::StatusCode::kInvalidArgument)
        << rendered;
    EXPECT_NE(response->status.message().find(needle), std::string::npos)
        << "wanted \"" << needle << "\" in: " << response->status.message();
  }

  Session session_;
};

TEST_F(DeltaHardeningTest, SemanticallyInvalidSequencesAnswerErr) {
  struct Case {
    std::vector<core::PopulationDelta> deltas;
    const char* needle;
  };
  const std::vector<Case> cases = {
      // Re-add of a user that is still active.
      {{{Kind::kAddUser, 3}}, "already active"},
      // Removal of a user that was already removed.
      {{{Kind::kRemoveUser, 4}, {Kind::kRemoveUser, 4}}, "not active"},
      // Rerate of a removed user.
      {{{Kind::kRemoveUser, 2}, {Kind::kRerate, 2, 1, 3.0}}, "not active"},
      // Out-of-range user id (the instance has 12 users).
      {{{Kind::kRemoveUser, 12}}, "outside"},
      // Rerate of an unknown item (the instance has 6 items).
      {{{Kind::kRerate, 0, 6, 3.0}}, "outside"},
      // Rating below/above the instance scale [1, 5].
      {{{Kind::kRerate, 0, 1, 0.5}}, "scale"},
      {{{Kind::kRerate, 0, 1, 5.5}}, "scale"},
  };
  for (const Case& bad : cases) {
    ExpectInvalid(RenderRequest(BaseRequest(bad.deltas)), bad.needle);
  }
  // Removing every user leaves nothing to form groups over.
  std::vector<core::PopulationDelta> drain;
  for (UserId user = 0; user < 12; ++user) {
    drain.push_back({Kind::kRemoveUser, user});
  }
  ExpectInvalid(RenderRequest(BaseRequest(drain)), "no active users");
}

TEST_F(DeltaHardeningTest, ErrorsNameTheOffendingDelta) {
  // The second op is the bad one; the message must say so.
  ExpectInvalid(
      RenderRequest(
          BaseRequest({{Kind::kRemoveUser, 1}, {Kind::kRemoveUser, 1}})),
      "delta 1");
}

TEST_F(DeltaHardeningTest, WireLevelGarbageFailsAtParseTime) {
  // Start from a valid line and splice malformed `deltas` payloads in,
  // so everything around the array stays well-formed.
  const std::string valid =
      RenderRequest(BaseRequest({{Kind::kRemoveUser, 1}}));
  const std::string token = "[[\"remove_user\",1]]";
  const auto at = valid.find(token);
  ASSERT_NE(at, std::string::npos) << valid;
  const auto with = [&](const std::string& replacement) {
    std::string line = valid;
    line.replace(at, token.size(), replacement);
    return line;
  };
  // Int32 wrap: 2^31 and 2^32 + 3 must fail validation, not wrap into
  // small ids.
  ExpectInvalid(with("[[\"remove_user\",2147483648]]"), "user");
  ExpectInvalid(with("[[\"rerate\",4294967299,0,3.0]]"), "user");
  // Negative ids.
  ExpectInvalid(with("[[\"remove_user\",-1]]"), "user");
  // Wrong arity for each op family.
  ExpectInvalid(with("[[\"remove_user\",1,2]]"), "membership ops");
  ExpectInvalid(with("[[\"rerate\",0,1]]"), "rerate takes");
  // Unknown op name and non-array entries.
  ExpectInvalid(with("[[\"drop_user\",1]]"), "deltas[0]");
  ExpectInvalid(with("[7]"), "deltas[0]");
  ExpectInvalid(with("{}"), "deltas");
  // groupform.delta/1 without the field at all.
  std::string missing = valid;
  missing.replace(valid.find(",\"deltas\":" + token),
                  (",\"deltas\":" + token).size(), "");
  ExpectInvalid(missing, "deltas");
}

TEST_F(DeltaHardeningTest, PlainRequestRejectsDeltasField) {
  // A groupform.request/1 line smuggling a deltas array is malformed.
  Request request = BaseRequest({{Kind::kRemoveUser, 1}});
  request.is_delta = true;
  std::string line = RenderRequest(request);
  const std::string schema = "groupform.delta/1";
  const auto at = line.find(schema);
  ASSERT_NE(at, std::string::npos);
  line.replace(at, schema.size(), "groupform.request/1");
  ExpectInvalid(line, "deltas");
}

TEST_F(DeltaHardeningTest, ValidSequenceAfterRejectionsStillServes) {
  // The session stays healthy after a burst of rejected lines.
  ExpectInvalid(RenderRequest(BaseRequest({{Kind::kRemoveUser, 99}})),
                "outside");
  const std::string ok_line =
      session_.HandleLine(RenderRequest(BaseRequest(
          {{Kind::kRemoveUser, 3}, {Kind::kRerate, 0, 1, 4.5}})));
  const auto response = ParseResponseLine(ok_line);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->state, eval::SweepCellState::kOk)
      << response->status;
  EXPECT_FALSE(response->epoch.empty());
}

}  // namespace
}  // namespace groupform::serve
