// Session execution semantics (DESIGN.md §12.2): OK requests match the
// in-process eval path, unknown solvers are ERR(NOT_FOUND), bad options
// are ERR(INVALID_ARGUMENT) via the factories' strict validation, caps
// and expired deadlines are DNF, and parse failures still produce a
// response line.
#include "serve/session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "common/status.h"
#include "eval/experiment.h"
#include "serve/instance_cache.h"
#include "serve/protocol.h"
#include "solvers/builtin.h"

namespace groupform::serve {
namespace {

/// A small deterministic instance every registered solver handles fast.
InstanceSpec TestInstance() {
  InstanceSpec spec;
  spec.kind = "dense";
  spec.users = 12;
  spec.items = 8;
  spec.clusters = 3;
  spec.seed = 5;
  return spec;
}

Request TestRequest(const std::string& solver) {
  Request request;
  request.id = "t";
  request.solver = solver;
  request.instance = TestInstance();
  request.problem.k = 3;
  request.problem.groups = 4;
  return request;
}

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override { solvers::EnsureBuiltinSolversRegistered(); }
};

TEST_F(SessionTest, OkRequestMatchesTheInProcessEvalPath) {
  Session session;
  const Request request = TestRequest("greedy");
  const Response response = session.Execute(request);
  ASSERT_EQ(response.state, eval::SweepCellState::kOk) << response.status;
  EXPECT_EQ(response.id, "t");
  EXPECT_EQ(response.solver, "greedy");

  // The same instance and problem through the eval layer directly.
  const auto matrix = BuildInstance(request.instance);
  ASSERT_TRUE(matrix.ok());
  core::FormationProblem problem;
  problem.matrix = &*matrix;
  problem.k = 3;
  problem.max_groups = 4;
  const auto direct =
      eval::RunAlgorithmByName("greedy", problem, request.seed);
  ASSERT_TRUE(direct.ok()) << direct.status();
  EXPECT_EQ(response.objective, direct->result.objective);  // bitwise
  EXPECT_EQ(response.num_groups, direct->result.num_groups());
}

TEST_F(SessionTest, UnknownSolverIsErrNotFound) {
  Session session;
  const Response response = session.Execute(TestRequest("warpdrive"));
  EXPECT_EQ(response.state, eval::SweepCellState::kErr);
  EXPECT_EQ(response.status.code(), common::StatusCode::kNotFound);
  // The message lists the available solvers, as the CLI does.
  EXPECT_NE(response.status.message().find("greedy"), std::string::npos);
}

TEST_F(SessionTest, BadSolverOptionIsErrInvalidArgument) {
  Session session;
  Request request = TestRequest("localsearch");
  // shard_min_items is one of the strictly validated knobs: a
  // non-numeric override fails SolverRegistry::Create.
  request.options.Set("shard_min_items", "banana");
  const Response response = session.Execute(request);
  EXPECT_EQ(response.state, eval::SweepCellState::kErr);
  EXPECT_EQ(response.status.code(),
            common::StatusCode::kInvalidArgument);
}

TEST_F(SessionTest, UserCapAnswersDnfWithoutRunning) {
  Session session;
  Request request = TestRequest("greedy");
  request.user_cap = 5;  // instance has 12 users
  const Response response = session.Execute(request);
  EXPECT_EQ(response.state, eval::SweepCellState::kDnf);
  EXPECT_EQ(response.status.code(),
            common::StatusCode::kResourceExhausted);

  // The server-wide default cap applies when the request sets none.
  SessionConfig config;
  config.default_user_cap = 5;
  Session capped(config);
  const Response capped_response = capped.Execute(TestRequest("greedy"));
  EXPECT_EQ(capped_response.state, eval::SweepCellState::kDnf);

  // A request cap above the instance size runs normally.
  request.user_cap = 100;
  EXPECT_EQ(session.Execute(request).state, eval::SweepCellState::kOk);
}

TEST_F(SessionTest, ExpiredDeadlineAnswersDnfBeforeExecuting) {
  Session session;
  Request request = TestRequest("greedy");
  request.deadline_ms = 1;
  // Stamp the request as received long ago: the deadline has passed
  // before execution starts, deterministically.
  const auto long_ago =
      std::chrono::steady_clock::now() - std::chrono::seconds(10);
  const Response response = session.Execute(request, long_ago);
  EXPECT_EQ(response.state, eval::SweepCellState::kDnf);
  EXPECT_EQ(response.status.code(),
            common::StatusCode::kResourceExhausted);
}

TEST_F(SessionTest, IncludeGroupsReturnsTheFullPartition) {
  Session session;
  Request request = TestRequest("greedy");
  request.include_groups = true;
  const Response response = session.Execute(request);
  ASSERT_EQ(response.state, eval::SweepCellState::kOk) << response.status;
  ASSERT_TRUE(response.has_groups);
  EXPECT_EQ(static_cast<int>(response.groups.size()),
            response.num_groups);
  // Disjoint cover of all 12 users.
  std::vector<UserId> all;
  for (const auto& group : response.groups) {
    all.insert(all.end(), group.begin(), group.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), 12u);
  for (UserId u = 0; u < 12; ++u) EXPECT_EQ(all[static_cast<size_t>(u)], u);
}

TEST_F(SessionTest, SecondsAppearOnlyWhenRequested) {
  Session session;
  Request request = TestRequest("greedy");
  const Response without = session.Execute(request);
  EXPECT_LT(without.seconds, 0.0);  // omitted from the rendered line
  EXPECT_EQ(RenderResponse(without).find("seconds"), std::string::npos);
  request.record_seconds = true;
  const Response with = session.Execute(request);
  EXPECT_GE(with.seconds, 0.0);
  EXPECT_NE(RenderResponse(with).find("\"seconds\":"), std::string::npos);
}

TEST_F(SessionTest, RequestsShareTheCachedInstance) {
  Session session;
  for (int i = 0; i < 5; ++i) {
    Request request = TestRequest("greedy");
    request.seed = static_cast<std::uint64_t>(100 + i);
    ASSERT_EQ(session.Execute(request).state, eval::SweepCellState::kOk);
  }
  const auto stats = session.cache().stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 4);
}

TEST_F(SessionTest, HandleLineAlwaysAnswersOneResponseLine) {
  Session session;
  const std::string ok_line =
      session.HandleLine(RenderRequest(TestRequest("greedy")));
  const auto ok = ParseResponseLine(ok_line);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->state, eval::SweepCellState::kOk);

  const std::string bad_line = session.HandleLine("this is not json");
  const auto bad = ParseResponseLine(bad_line);
  ASSERT_TRUE(bad.ok()) << bad.status();
  EXPECT_EQ(bad->state, eval::SweepCellState::kErr);
  EXPECT_EQ(bad->status.code(), common::StatusCode::kInvalidArgument);
  EXPECT_EQ(bad->id, "");
}

TEST_F(SessionTest, ProblemKnobsReachTheSolver) {
  Session session;
  Request request = TestRequest("greedy");
  request.problem.semantics = "av";
  request.problem.aggregation = "sum";
  request.problem.k = 2;
  const Response av = session.Execute(request);
  ASSERT_EQ(av.state, eval::SweepCellState::kOk) << av.status;
  const Response lm = session.Execute(TestRequest("greedy"));
  ASSERT_EQ(lm.state, eval::SweepCellState::kOk) << lm.status;
  // Different semantics/aggregation/k must not produce the same envelope.
  EXPECT_NE(RenderResponse(av), RenderResponse(lm));
}

}  // namespace
}  // namespace groupform::serve
