// Binary ≡ JSON, response-for-response (DESIGN.md §15): the same mixed
// request set — fresh solves, cache hits, include_groups, a second
// solver, deltas, a cap DNF, an unknown-solver ERR — answers
// byte-identical response documents on the newline-JSON wire, the GFB1
// binary wire, and the batch envelope on both, at 1/2/8 threads and
// credit windows 1/16/100. Also pins the client half of the credit
// contract: the balance returns to the hello window once all responses
// are in.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "solvers/builtin.h"

namespace groupform::serve {
namespace {

Request BaseRequest(const std::string& id, std::uint64_t seed) {
  Request request;
  request.id = id;
  request.solver = "greedy";
  request.instance.kind = "dense";
  request.instance.users = 8;
  request.instance.items = 5;
  request.instance.clusters = 2;
  request.instance.seed = seed;
  request.problem.k = 2;
  request.problem.groups = 3;
  return request;
}

/// Every response shape the protocol can produce, in one ordered set.
std::vector<std::string> MixedRequestLines() {
  std::vector<std::string> lines;
  lines.push_back(RenderRequest(BaseRequest("fresh", 4)));
  lines.push_back(RenderRequest(BaseRequest("hit", 4)));
  Request groups = BaseRequest("groups", 4);
  groups.include_groups = true;
  lines.push_back(RenderRequest(groups));
  Request local = BaseRequest("local", 4);
  local.solver = "localsearch";
  lines.push_back(RenderRequest(local));
  lines.push_back(RenderRequest(BaseRequest("other", 9)));
  Request capped = BaseRequest("capped", 4);
  capped.user_cap = 4;  // 8 users > cap → DNF
  lines.push_back(RenderRequest(capped));
  Request unknown = BaseRequest("unknown", 4);
  unknown.solver = "no-such-solver";  // → ERR(NOT_FOUND)
  lines.push_back(RenderRequest(unknown));
  Request delta = BaseRequest("delta", 4);
  delta.is_delta = true;
  delta.deltas.push_back(
      {core::PopulationDelta::Kind::kRemoveUser, 3, 0, 0.0});
  lines.push_back(RenderRequest(delta));
  Request delta2 = BaseRequest("delta2", 4);
  delta2.is_delta = true;
  delta2.deltas.push_back(
      {core::PopulationDelta::Kind::kRemoveUser, 3, 0, 0.0});
  delta2.deltas.push_back(
      {core::PopulationDelta::Kind::kRerate, 1, 2, 3.0});
  lines.push_back(RenderRequest(delta2));
  return lines;
}

/// The golden set must actually exercise the whole state vocabulary, or
/// "equivalent" would be vacuous.
void CheckGoldenVariety(const std::vector<std::string>& golden) {
  int ok = 0, dnf = 0, err = 0, deltas = 0, with_groups = 0;
  for (const std::string& line : golden) {
    const auto response = ParseResponseLine(line);
    ASSERT_TRUE(response.ok()) << response.status();
    switch (response->state) {
      case eval::SweepCellState::kOk:
        ++ok;
        break;
      case eval::SweepCellState::kDnf:
        ++dnf;
        break;
      default:
        ++err;
        break;
    }
    if (response->is_delta) ++deltas;
    if (response->has_groups) ++with_groups;
  }
  EXPECT_GE(ok, 5);
  EXPECT_EQ(dnf, 1);
  EXPECT_EQ(err, 1);
  EXPECT_EQ(deltas, 2);
  EXPECT_EQ(with_groups, 1);
}

void ExpectSameLines(const std::vector<std::string>& got,
                     const std::vector<std::string>& golden,
                     const char* path) {
  ASSERT_EQ(got.size(), golden.size()) << path;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(got[i], golden[i]) << path << " response " << i;
  }
}

class WireEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override { solvers::EnsureBuiltinSolversRegistered(); }
  void TearDown() override {
    common::ThreadPool::SetDefaultThreadCount(0);
  }

  /// One full sweep at a fixed pool size: golden responses from the
  /// one-shot reference client, then every wire × call-shape combination
  /// against one kAuto server per credit window.
  void RunAtThreads(int threads) {
    common::ThreadPool::SetDefaultThreadCount(threads);
    const std::vector<std::string> lines = MixedRequestLines();

    std::vector<std::string> golden;
    {
      Session session;
      ServerConfig config;
      config.port = 0;
      config.max_inflight = 1;  // strictly sequential reference
      TcpServer server(session, config);
      ASSERT_TRUE(server.Start().ok());
      std::thread serving([&] {
    const auto serve_status = server.Serve();
    EXPECT_TRUE(serve_status.ok()) << serve_status.ToString();
  });
      const auto golden_or =
          SendRequestLines("127.0.0.1", server.port(), lines);
      server.Shutdown();
      serving.join();
      ASSERT_TRUE(golden_or.ok()) << golden_or.status();
      golden = *golden_or;
    }
    CheckGoldenVariety(golden);

    for (const int window : {1, 16, 100}) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " window=" << window);
      Session session;
      ServerConfig config;
      config.port = 0;
      config.max_inflight = window;  // credit_window=0 follows this
      TcpServer server(session, config);
      ASSERT_TRUE(server.Start().ok());
      std::thread serving([&] {
    const auto serve_status = server.Serve();
    EXPECT_TRUE(serve_status.ok()) << serve_status.ToString();
  });

      // Newline-JSON, pipelined then batched, on one connection.
      {
        auto client_or = WireClient::Connect("127.0.0.1", server.port(),
                                             WireClient::Wire::kJson);
        ASSERT_TRUE(client_or.ok()) << client_or.status();
        WireClient client = std::move(*client_or);
        EXPECT_EQ(client.credits(), -1);  // JSON has no credit accounting
        const auto pipelined = client.CallPipelined(lines);
        ASSERT_TRUE(pipelined.ok()) << pipelined.status();
        ExpectSameLines(*pipelined, golden, "json pipelined");
        const auto batched = client.CallBatch(lines, "json-batch");
        ASSERT_TRUE(batched.ok()) << batched.status();
        ExpectSameLines(*batched, golden, "json batch");
      }

      // GFB1 binary, single call + pipelined + batched, one connection.
      {
        auto client_or = WireClient::Connect("127.0.0.1", server.port(),
                                             WireClient::Wire::kBinary);
        ASSERT_TRUE(client_or.ok()) << client_or.status();
        WireClient client = std::move(*client_or);
        EXPECT_EQ(client.hello().credits, window);
        EXPECT_EQ(client.hello().max_frame_bytes, kMaxRequestLineBytes);
        EXPECT_EQ(client.hello().max_batch_requests, kMaxBatchRequests);
        EXPECT_EQ(client.credits(), window);

        const auto single = client.Call(lines[0]);
        ASSERT_TRUE(single.ok()) << single.status();
        EXPECT_EQ(*single, golden[0]);
        EXPECT_EQ(client.credits(), window);  // grant came back

        const auto pipelined = client.CallPipelined(lines);
        ASSERT_TRUE(pipelined.ok()) << pipelined.status();
        ExpectSameLines(*pipelined, golden, "binary pipelined");
        EXPECT_EQ(client.credits(), window);

        const auto batched = client.CallBatch(lines, "bin-batch");
        ASSERT_TRUE(batched.ok()) << batched.status();
        ExpectSameLines(*batched, golden, "binary batch");
        EXPECT_EQ(client.credits(), window);
      }

      server.Shutdown();
      serving.join();
    }
  }
};

TEST_F(WireEquivalenceTest, AllWiresMatchAtOneThread) { RunAtThreads(1); }
TEST_F(WireEquivalenceTest, AllWiresMatchAtTwoThreads) { RunAtThreads(2); }
TEST_F(WireEquivalenceTest, AllWiresMatchAtEightThreads) {
  RunAtThreads(8);
}

}  // namespace
}  // namespace groupform::serve
