// Transport hardening for the TCP front-end: a torn connection (recv
// error, not clean EOF) must never execute its half-received tail; a
// client that disconnects mid-stream must stop consuming solver work;
// an oversize line split across many recvs answers exactly one ERR; and
// SendRequestLines reports a short response stream as DataLoss instead
// of mispairing responses.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "solvers/builtin.h"

namespace groupform::serve {
namespace {

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

void SendBytes(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0) << std::strerror(errno);
    sent += static_cast<std::size_t>(n);
  }
}

/// Blocking read of exactly one '\n'-terminated line.
std::string ReadLine(int fd) {
  std::string line;
  char c;
  while (::recv(fd, &c, 1, 0) == 1) {
    if (c == '\n') return line;
    line.push_back(c);
  }
  ADD_FAILURE() << "connection closed before a full line arrived";
  return line;
}

/// A request whose instance seed varies, so each distinct id is a cache
/// miss: cache misses count solver executions.
std::string SeededRequest(const std::string& id, std::uint64_t seed) {
  Request request;
  request.id = id;
  request.solver = "greedy";
  request.instance.kind = "dense";
  request.instance.users = 48;
  request.instance.items = 12;
  request.instance.clusters = 2;
  request.instance.seed = seed;
  request.problem.k = 3;
  request.problem.groups = 8;
  return RenderRequest(request);
}

class TcpHardeningTest : public ::testing::Test {
 protected:
  void SetUp() override { solvers::EnsureBuiltinSolversRegistered(); }
  void TearDown() override {
    common::ThreadPool::SetDefaultThreadCount(0);
  }
};

// Regression test for the torn-connection bug: the reader used to treat
// recv() errors like a clean EOF and then execute the unterminated
// `pending` tail — so a connection reset mid-line executed a request the
// client never finished sending. The tail here is a complete, valid
// request document (only the newline is missing), so the pre-fix server
// solves it (1 cache miss) and the fixed server drops it (0).
TEST_F(TcpHardeningTest, TornConnectionDoesNotExecuteTheHalfReceivedTail) {
  common::ThreadPool::SetDefaultThreadCount(2);
  Session session;
  ServerConfig config;
  config.port = 0;
  TcpServer server(session, config);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] {
    const auto serve_status = server.Serve();
    EXPECT_TRUE(serve_status.ok()) << serve_status.ToString();
  });

  const int fd = ConnectLoopback(server.port());
  const std::string unterminated = SeededRequest("torn", 7);
  SendBytes(fd, unterminated.data(), unterminated.size());  // no '\n'
  // Let the bytes land before tearing the connection down, so the server
  // definitely has the tail buffered when the reset arrives.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // SO_LINGER with zero timeout makes close() send RST: the server's
  // next recv() fails with ECONNRESET instead of returning 0.
  struct linger hard_reset = {1, 0};
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_reset,
                         sizeof(hard_reset)),
            0);
  ::close(fd);
  // Give the handler a moment to process the reset before tearing the
  // listener down (Shutdown() then waits the handler out).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  server.Shutdown();
  serving.join();
  EXPECT_EQ(session.cache().stats().misses, 0);
  EXPECT_EQ(session.cache().stats().hits, 0);
}

// Clean-EOF control for the test above: the half-close idiom (send an
// unterminated final line, then FIN) still executes the tail — the fix
// must distinguish errors from EOF, not drop both.
TEST_F(TcpHardeningTest, CleanEofStillExecutesTheUnterminatedTail) {
  common::ThreadPool::SetDefaultThreadCount(2);
  Session session;
  ServerConfig config;
  config.port = 0;
  TcpServer server(session, config);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] {
    const auto serve_status = server.Serve();
    EXPECT_TRUE(serve_status.ok()) << serve_status.ToString();
  });

  const int fd = ConnectLoopback(server.port());
  const std::string unterminated = SeededRequest("eof-tail", 7);
  SendBytes(fd, unterminated.data(), unterminated.size());  // no '\n'
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  const auto response = ParseResponseLine(ReadLine(fd));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->id, "eof-tail");
  EXPECT_EQ(response->state, eval::SweepCellState::kOk)
      << response->status;
  ::close(fd);

  server.Shutdown();
  serving.join();
  EXPECT_EQ(session.cache().stats().misses, 1);
}

// Regression test for the discarded-write bug: the writer used to ignore
// SendAll's return value, so a client that disconnected after pipelining
// a burst still had every remaining request solved into a dead socket.
// Forty distinct instances (one cache miss each) make the executed count
// observable: the pre-fix server solves all 40, the fixed one stops as
// soon as a response write fails.
TEST_F(TcpHardeningTest, DisconnectedClientStopsConsumingSolves) {
  common::ThreadPool::SetDefaultThreadCount(2);
  Session session;
  ServerConfig config;
  config.port = 0;
  config.max_inflight = 2;
  TcpServer server(session, config);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] {
    const auto serve_status = server.Serve();
    EXPECT_TRUE(serve_status.ok()) << serve_status.ToString();
  });

  constexpr int kRequests = 40;
  const int fd = ConnectLoopback(server.port());
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += SeededRequest(common::StrFormat("gone-%d", i),
                           static_cast<std::uint64_t>(100 + i));
    burst += '\n';
  }
  SendBytes(fd, burst.data(), burst.size());
  // Disconnect without reading a single response. The responses the
  // server keeps writing hit a closed socket, so a write fails within
  // the first few retirements.
  ::close(fd);

  // Wait (bounded) until the server has demonstrably started executing
  // the burst, so Shutdown() cannot win the race against accept().
  // Shutdown() then blocks until the connection handler finishes, which
  // makes the final miss count exact.
  for (int i = 0; i < 500 && session.cache().stats().misses < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server.Shutdown();
  serving.join();
  const auto stats = session.cache().stats();
  // At least the first request executes (it was enqueued before any
  // write could fail)...
  EXPECT_GE(stats.misses, 1);
  // ...but nowhere near all of them. Pre-fix this was exactly 40.
  EXPECT_LT(stats.misses, kRequests);
}

// The overflow satellite: a line longer than kMaxRequestLineBytes,
// arriving split across many recv() calls, answers exactly one
// ERR(INVALID_ARGUMENT) line and then the connection closes — no crash,
// no unbounded buffering past the cap, nothing executed.
TEST_F(TcpHardeningTest, OversizeLineAcrossManyRecvsAnswersOneErr) {
  common::ThreadPool::SetDefaultThreadCount(1);
  Session session;
  ServerConfig config;
  config.port = 0;
  TcpServer server(session, config);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] {
    const auto serve_status = server.Serve();
    EXPECT_TRUE(serve_status.ok()) << serve_status.ToString();
  });

  const int fd = ConnectLoopback(server.port());
  // One byte past the cap, no newline anywhere. 'x' on the first byte
  // rules out the GFB1 magic, so this exercises the JSON wire. The total
  // is exactly cap+1 so the server's overflow trips on the final byte,
  // after everything was consumed — the ERR line then races nothing.
  const std::int64_t total = kMaxRequestLineBytes + 1;
  const std::string chunk(1 << 20, 'x');
  std::int64_t sent = 0;
  while (sent < total) {
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::int64_t>(static_cast<std::int64_t>(chunk.size()),
                               total - sent));
    SendBytes(fd, chunk.data(), take);
    sent += static_cast<std::int64_t>(take);
  }
  const auto response = ParseResponseLine(ReadLine(fd));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->state, eval::SweepCellState::kErr);
  EXPECT_EQ(response->status.code(),
            common::StatusCode::kInvalidArgument);
  // Nothing follows the ERR line: the server closed the connection.
  char byte;
  EXPECT_LE(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);

  server.Shutdown();
  serving.join();
  EXPECT_EQ(session.cache().stats().misses, 0);
}

// SendRequestLines satellite: the server ignores empty lines, so a batch
// with interleaved blanks comes back short — the client must surface
// that as DataLoss rather than silently pairing responses with the
// wrong requests.
TEST_F(TcpHardeningTest, SendRequestLinesReportsShortStreamsAsDataLoss) {
  common::ThreadPool::SetDefaultThreadCount(1);
  Session session;
  ServerConfig config;
  config.port = 0;
  TcpServer server(session, config);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] {
    const auto serve_status = server.Serve();
    EXPECT_TRUE(serve_status.ok()) << serve_status.ToString();
  });

  // Control: an all-request batch round-trips.
  const auto full = SendRequestLines("127.0.0.1", server.port(),
                                     {SeededRequest("ok-0", 3)});
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_EQ(full->size(), 1u);

  // Three lines in, one response out (the blanks are ignored).
  const auto short_stream = SendRequestLines(
      "127.0.0.1", server.port(), {"", SeededRequest("ok-1", 3), ""});
  ASSERT_FALSE(short_stream.ok());
  EXPECT_EQ(short_stream.status().code(), common::StatusCode::kDataLoss);

  server.Shutdown();
  serving.join();
}

}  // namespace
}  // namespace groupform::serve
