// The `groupform.delta/1` equivalence properties (DESIGN.md §13),
// checked over randomized (but seeded) delta sequences:
//
//  1. A delta request with a greedy-family solver is byte-identical —
//     after clearing the delta-only response fields — to a fresh
//     `groupform.request/1` on an inline instance rebuilt from the
//     post-delta population.
//  2. Warm-started localsearch (the delta fold) never reports a worse
//     objective than a cold solve of the same epoch.
//  3. `objective_delta_vs_previous` is exactly the difference between
//     the epoch's objective and its one-shorter prefix's objective.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "core/delta.h"
#include "serve/instance_cache.h"
#include "serve/protocol.h"
#include "serve/session.h"
#include "solvers/builtin.h"

namespace groupform::serve {
namespace {

using Kind = core::PopulationDelta::Kind;

constexpr std::int32_t kUsers = 12;
constexpr std::int32_t kItems = 6;

/// Deterministic inline base instance: every (user, item) cell on a
/// half-point grid in [1, 5], so rerates can hit exact cell values.
InstanceSpec BaseInstance() {
  InstanceSpec spec;
  spec.kind = "inline";
  spec.users = kUsers;
  spec.items = kItems;
  spec.scale_min = 1.0;
  spec.scale_max = 5.0;
  for (UserId u = 0; u < kUsers; ++u) {
    for (ItemId i = 0; i < kItems; ++i) {
      InstanceSpec::Triplet triplet;
      triplet.user = u;
      triplet.item = i;
      triplet.rating = 1.0 + 0.5 * ((u * 7 + i * 3) % 9);
      spec.ratings.push_back(triplet);
    }
  }
  return spec;
}

/// A valid random sequence against the base instance: removals keep at
/// least 4 users active, adds re-activate removed users, rerates target
/// active users (skipped entirely when `membership_only`).
std::vector<core::PopulationDelta> RandomSequence(std::mt19937& rng,
                                                  bool membership_only) {
  std::vector<char> active(kUsers, 1);
  int num_active = kUsers;
  std::vector<core::PopulationDelta> deltas;
  const auto pick = [&rng](int bound) {
    return static_cast<int>(rng() % static_cast<unsigned>(bound));
  };
  const int length = 1 + pick(6);
  for (int i = 0; i < length; ++i) {
    const int op = pick(membership_only ? 2 : 3);
    if (op == 0 && num_active > 4) {
      int user = pick(kUsers);
      while (!active[static_cast<std::size_t>(user)]) user = pick(kUsers);
      active[static_cast<std::size_t>(user)] = 0;
      --num_active;
      deltas.push_back({Kind::kRemoveUser, user});
    } else if (op == 1 && num_active < kUsers) {
      int user = pick(kUsers);
      while (active[static_cast<std::size_t>(user)]) user = pick(kUsers);
      active[static_cast<std::size_t>(user)] = 1;
      ++num_active;
      deltas.push_back({Kind::kAddUser, user});
    } else if (!membership_only) {
      int user = pick(kUsers);
      while (!active[static_cast<std::size_t>(user)]) user = pick(kUsers);
      deltas.push_back({Kind::kRerate, user, pick(kItems),
                        1.0 + 0.5 * pick(9)});
    }
  }
  return deltas;
}

/// The post-delta population as a fresh inline instance (what a client
/// would send as a plain groupform.request/1 after the same mutations).
InstanceSpec PostDeltaInstance(
    const InstanceSpec& base,
    std::span<const core::PopulationDelta> deltas) {
  const auto matrix = BuildInstance(base);
  EXPECT_TRUE(matrix.ok()) << matrix.status();
  const auto applied = core::ApplyDeltas(*matrix, deltas);
  EXPECT_TRUE(applied.ok()) << applied.status();
  const auto epoch = core::MaterializeDeltas(*matrix, *applied);
  EXPECT_TRUE(epoch.ok()) << epoch.status();
  InstanceSpec spec;
  spec.kind = "inline";
  spec.users = epoch->num_users();
  spec.items = epoch->num_items();
  spec.scale_min = base.scale_min;
  spec.scale_max = base.scale_max;
  for (UserId u = 0; u < epoch->num_users(); ++u) {
    for (const data::RatingEntry& entry : epoch->RatingsOf(u)) {
      InstanceSpec::Triplet triplet;
      triplet.user = u;
      triplet.item = entry.item;
      triplet.rating = entry.rating;
      spec.ratings.push_back(triplet);
    }
  }
  return spec;
}

Request DeltaRequest(const std::string& solver,
                     std::vector<core::PopulationDelta> deltas) {
  Request request;
  request.id = "eq";
  request.solver = solver;
  request.is_delta = true;
  request.deltas = std::move(deltas);
  request.instance = BaseInstance();
  request.problem.k = 3;
  request.problem.groups = 4;
  request.include_groups = true;
  return request;
}

class DeltaEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override { solvers::EnsureBuiltinSolversRegistered(); }
};

TEST_F(DeltaEquivalenceTest, GreedyDeltaMatchesFreshResolveByteForByte) {
  for (const bool membership_only : {true, false}) {
    std::mt19937 rng(membership_only ? 2024u : 4048u);
    for (int trial = 0; trial < 8; ++trial) {
      const auto deltas = RandomSequence(rng, membership_only);
      Session session;
      Request delta_request = DeltaRequest("greedy", deltas);
      Response via_delta = session.ExecuteDelta(delta_request);
      ASSERT_EQ(via_delta.state, eval::SweepCellState::kOk)
          << via_delta.status;

      Request fresh = delta_request;
      fresh.is_delta = false;
      fresh.deltas.clear();
      fresh.instance = PostDeltaInstance(delta_request.instance, deltas);
      const Response via_fresh = session.Execute(fresh);
      ASSERT_EQ(via_fresh.state, eval::SweepCellState::kOk)
          << via_fresh.status;

      // Clearing the delta-only envelope fields must leave the exact
      // bytes of the fresh response: same objective, groups, metrics,
      // all canonically rendered.
      via_delta.is_delta = false;
      via_delta.epoch.clear();
      via_delta.objective_delta_vs_previous = 0.0;
      via_delta.warm_start_passes = 0;
      EXPECT_EQ(RenderResponse(via_delta), RenderResponse(via_fresh))
          << "membership_only=" << membership_only << " trial=" << trial;
    }
  }
}

TEST_F(DeltaEquivalenceTest, WarmStartedLocalsearchNeverWorseThanCold) {
  std::mt19937 rng(7117u);
  for (int trial = 0; trial < 6; ++trial) {
    const auto deltas = RandomSequence(rng, /*membership_only=*/false);
    Session session;
    Request delta_request = DeltaRequest("localsearch", deltas);
    const Response warm = session.ExecuteDelta(delta_request);
    ASSERT_EQ(warm.state, eval::SweepCellState::kOk) << warm.status;
    EXPECT_GE(warm.warm_start_passes, 0);

    Request cold = delta_request;
    cold.is_delta = false;
    cold.deltas.clear();
    cold.instance = PostDeltaInstance(delta_request.instance, deltas);
    const Response cold_response = session.Execute(cold);
    ASSERT_EQ(cold_response.state, eval::SweepCellState::kOk)
        << cold_response.status;
    EXPECT_GE(warm.objective, cold_response.objective) << "trial=" << trial;
  }
}

TEST_F(DeltaEquivalenceTest, ObjectiveDeltaPricesAgainstThePrefixEpoch) {
  std::mt19937 rng(515u);
  for (const char* solver : {"greedy", "localsearch", "veckmeans"}) {
    const auto deltas = RandomSequence(rng, /*membership_only=*/false);
    if (deltas.empty()) continue;
    Session session;
    const Response full =
        session.ExecuteDelta(DeltaRequest(solver, deltas));
    ASSERT_EQ(full.state, eval::SweepCellState::kOk) << full.status;
    auto prefix = deltas;
    prefix.pop_back();
    const Response previous =
        session.ExecuteDelta(DeltaRequest(solver, prefix));
    ASSERT_EQ(previous.state, eval::SweepCellState::kOk)
        << previous.status;
    EXPECT_EQ(full.objective_delta_vs_previous,
              full.objective - previous.objective)
        << solver;
  }
}

TEST_F(DeltaEquivalenceTest, EmptySequenceIsItsOwnPrevious) {
  Session session;
  const Response response =
      session.ExecuteDelta(DeltaRequest("greedy", {}));
  ASSERT_EQ(response.state, eval::SweepCellState::kOk) << response.status;
  EXPECT_EQ(response.objective_delta_vs_previous, 0.0);
  // A cancelling sequence shares the base matrix's cache entry: one
  // instance, no epoch copy.
  EXPECT_EQ(session.cache().stats().entries, 1);
}

}  // namespace
}  // namespace groupform::serve
