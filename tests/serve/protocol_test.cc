// Wire-protocol round trips (docs/PROTOCOL.md): parse ∘ render is the
// identity on canonical lines, malformed input fails with
// INVALID_ARGUMENT, and canonical cache keys distinguish exactly the
// specs that load different matrices.
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "common/status.h"
#include "eval/sweep.h"

namespace groupform::serve {
namespace {

Request FullRequest() {
  Request request;
  request.id = "req-7";
  request.solver = "localsearch";
  request.options.Set("max_passes", "10").Set("use_swaps", "0");
  request.instance.kind = "inline";
  request.instance.users = 3;
  request.instance.items = 2;
  request.instance.scale_min = 1.0;
  request.instance.scale_max = 5.0;
  request.instance.ratings = {{0, 0, 5.0}, {0, 1, 1.0}, {1, 0, 3.0},
                              {1, 1, 4.0}, {2, 0, 2.5}};
  request.problem.semantics = "av";
  request.problem.aggregation = "sum";
  request.problem.missing = "zero";
  request.problem.k = 2;
  request.problem.groups = 2;
  request.problem.candidate_depth = 4;
  request.seed = 123;
  request.deadline_ms = 2500;
  request.user_cap = 100;
  request.include_groups = true;
  request.record_seconds = true;
  return request;
}

TEST(Protocol, RequestRoundTripIsIdentity) {
  const std::string canonical = RenderRequest(FullRequest());
  const auto parsed = ParseRequestLine(canonical);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(RenderRequest(*parsed), canonical);
}

TEST(Protocol, RequestFieldsSurviveTheRoundTrip) {
  const auto parsed = ParseRequestLine(RenderRequest(FullRequest()));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->id, "req-7");
  EXPECT_EQ(parsed->solver, "localsearch");
  EXPECT_EQ(parsed->options.GetString("max_passes", ""), "10");
  EXPECT_EQ(parsed->options.GetString("use_swaps", ""), "0");
  EXPECT_EQ(parsed->instance.kind, "inline");
  ASSERT_EQ(parsed->instance.ratings.size(), 5u);
  EXPECT_EQ(parsed->instance.ratings[4].rating, 2.5);
  EXPECT_EQ(parsed->problem.semantics, "av");
  EXPECT_EQ(parsed->problem.aggregation, "sum");
  EXPECT_EQ(parsed->problem.k, 2);
  EXPECT_EQ(parsed->seed, 123u);
  EXPECT_EQ(parsed->deadline_ms, 2500);
  EXPECT_EQ(parsed->user_cap, 100);
  EXPECT_TRUE(parsed->include_groups);
  EXPECT_TRUE(parsed->record_seconds);
}

TEST(Protocol, SyntheticAndFileInstancesRoundTrip) {
  Request request;
  request.solver = "greedy";
  request.instance.kind = "synthetic";
  request.instance.preset = "movielens";
  request.instance.users = 200;
  request.instance.items = 100;
  request.instance.seed = 7;
  const auto synthetic = ParseRequestLine(RenderRequest(request));
  ASSERT_TRUE(synthetic.ok()) << synthetic.status();
  EXPECT_EQ(RenderRequest(*synthetic), RenderRequest(request));

  request.instance = InstanceSpec();
  request.instance.kind = "csv";
  request.instance.path = "/data/ratings.csv";
  const auto csv = ParseRequestLine(RenderRequest(request));
  ASSERT_TRUE(csv.ok()) << csv.status();
  EXPECT_EQ(csv->instance.path, "/data/ratings.csv");
  EXPECT_EQ(RenderRequest(*csv), RenderRequest(request));
}

TEST(Protocol, OkResponseRoundTripIsIdentity) {
  Response response;
  response.id = "req-7";
  response.state = eval::SweepCellState::kOk;
  response.solver = "greedy";
  response.objective = 12.75;
  response.num_groups = 2;
  response.metrics.avg_group_satisfaction = 10.5;
  response.metrics.mean_user_rating = 3.25;
  response.metrics.mean_user_ndcg = 0.875;
  response.metrics.fully_satisfied = 0.5;
  response.has_groups = true;
  response.groups = {{0, 2}, {1}};
  response.seconds = 0.125;
  const std::string canonical = RenderResponse(response);
  const auto parsed = ParseResponseLine(canonical);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(RenderResponse(*parsed), canonical);
  EXPECT_EQ(parsed->objective, 12.75);
  ASSERT_TRUE(parsed->has_groups);
  EXPECT_EQ(parsed->groups, (std::vector<std::vector<UserId>>{{0, 2}, {1}}));
  EXPECT_EQ(parsed->seconds, 0.125);
}

TEST(Protocol, ErrorResponseRoundTripIsIdentity) {
  Response response;
  response.id = "";
  response.state = eval::SweepCellState::kErr;
  response.status = common::Status::NotFound("no solver named \"nope\"");
  const std::string canonical = RenderResponse(response);
  const auto parsed = ParseResponseLine(canonical);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(RenderResponse(*parsed), canonical);
  EXPECT_EQ(parsed->state, eval::SweepCellState::kErr);
  EXPECT_EQ(parsed->status.code(), common::StatusCode::kNotFound);
  EXPECT_EQ(parsed->status.message(), "no solver named \"nope\"");

  response.state = eval::SweepCellState::kDnf;
  response.status = common::Status::ResourceExhausted("over the cap");
  const auto dnf = ParseResponseLine(RenderResponse(response));
  ASSERT_TRUE(dnf.ok()) << dnf.status();
  EXPECT_EQ(dnf->state, eval::SweepCellState::kDnf);
}

TEST(Protocol, EscapedStringsRoundTrip) {
  Request request = FullRequest();
  request.id = "quote\" slash\\ tab\t newline\n control\x01 unicode\xC3\xA9";
  const std::string canonical = RenderRequest(request);
  const auto parsed = ParseRequestLine(canonical);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->id, request.id);
  EXPECT_EQ(RenderRequest(*parsed), canonical);
}

TEST(Protocol, UnicodeEscapesDecode) {
  const auto parsed = ParseRequestLine(
      R"({"schema":"groupform.request/1","id":"éA😀",)"
      R"("solver":"greedy","instance":{"kind":"dense","users":4,"items":3}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->id, "\xC3\xA9"
                        "A"
                        "\xF0\x9F\x98\x80");
}

TEST(Protocol, MalformedLinesAreInvalidArgument) {
  for (const std::string line :
       {"", "{", "not json", "42", "[]", "{\"schema\":1}",
        "{\"schema\":\"groupform.request/1\"} trailing",
        R"({"schema":"groupform.request/1"})",          // missing solver
        R"({"schema":"wrong/1","solver":"greedy"})",    // wrong schema
        R"({"schema":"groupform.request/1","solver":"greedy"})",  // no instance
        R"({"schema":"groupform.request/1","solver":"greedy",)"
        R"("instance":{"kind":"warp","users":1,"items":1}})",  // bad kind
        R"({"schema":"groupform.request/1","solver":"greedy",)"
        R"("instance":{"kind":"dense","users":0,"items":3}})",  // users < 1
        R"({"schema":"groupform.request/1","solver":"greedy",)"
        R"("instance":{"kind":"synthetic"}})",  // users/items missing
        R"({"schema":"groupform.request/1","solver":"greedy",)"
        R"("instance":{"kind":"synthetic","users":3000000000,)"
        R"("items":100}})",  // users past INT32_MAX would wrap
        R"({"schema":"groupform.request/1","solver":"greedy",)"
        R"("instance":{"kind":"inline","users":2,"items":2,)"
        R"("ratings":[[1e300,0,3]]}})",  // triplet id not an int32
        R"({"schema":"groupform.request/1","solver":"greedy",)"
        R"("instance":{"kind":"dense","users":2,"items":2},)"
        R"("deadline_ms":9000000000000000})",  // would overflow the clock
        R"({"schema":"groupform.request/1","solver":"greedy",)"
        R"("instance":{"kind":"dense","users":01,"items":2}})",  // not RFC 8259
        R"({"schema":"groupform.request/1","solver":"greedy",)"
        R"("instance":{"kind":"dense","users":2,"items":2},"seed":-1})",
        R"({"schema":"groupform.request/1","solver":"greedy",)"
        R"("instance":{"kind":"dense","users":2,"items":2},)"
        R"("problem":{"semantics":"nope"}})"}) {
    const auto parsed = ParseRequestLine(line);
    ASSERT_FALSE(parsed.ok()) << "accepted: " << line;
    EXPECT_EQ(parsed.status().code(), common::StatusCode::kInvalidArgument)
        << line;
  }
}

TEST(Protocol, UnknownTopLevelKeysAreIgnored) {
  const auto parsed = ParseRequestLine(
      R"({"schema":"groupform.request/1","solver":"greedy","future":[1,2],)"
      R"("instance":{"kind":"dense","users":4,"items":3,"novel":true}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->solver, "greedy");
}

TEST(Protocol, OptionValuesCoerceToStrings) {
  const auto parsed = ParseRequestLine(
      R"({"schema":"groupform.request/1","solver":"sa",)"
      R"("options":{"iters":200,"alpha":0.95,"verbose":true,"tag":"x"},)"
      R"("instance":{"kind":"dense","users":4,"items":3}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->options.GetString("iters", ""), "200");
  EXPECT_EQ(parsed->options.GetString("alpha", ""), "0.95");
  EXPECT_EQ(parsed->options.GetString("verbose", ""), "1");
  EXPECT_EQ(parsed->options.GetString("tag", ""), "x");
}

TEST(Protocol, CanonicalKeysSeparateInstances) {
  InstanceSpec synthetic;
  synthetic.kind = "synthetic";
  synthetic.preset = "yahoo";
  synthetic.users = 100;
  synthetic.items = 50;
  synthetic.seed = 1;
  InstanceSpec other = synthetic;
  EXPECT_EQ(synthetic.CanonicalKey(), other.CanonicalKey());
  other.seed = 2;
  EXPECT_NE(synthetic.CanonicalKey(), other.CanonicalKey());
  other = synthetic;
  other.preset = "movielens";
  EXPECT_NE(synthetic.CanonicalKey(), other.CanonicalKey());

  InstanceSpec inline_a;
  inline_a.kind = "inline";
  inline_a.users = 2;
  inline_a.items = 2;
  inline_a.ratings = {{0, 0, 5.0}, {1, 1, 3.0}};
  InstanceSpec inline_b = inline_a;
  EXPECT_EQ(inline_a.CanonicalKey(), inline_b.CanonicalKey());
  inline_b.ratings[1].rating = 4.0;
  EXPECT_NE(inline_a.CanonicalKey(), inline_b.CanonicalKey());
}

}  // namespace
}  // namespace groupform::serve
