// The serving determinism contract (DESIGN.md §12.4) and the pipe
// transport: 100 loopback requests over one cached instance produce
// byte-identical response streams at 1, 2, and 8 threads and at every
// pipelining window, with responses in request order. The same matrix
// covers interleaved `groupform.request/1` + `groupform.delta/1` streams
// — epoch materialisation, warm-start folds, and the solution memo are
// pure memoization, so they must not perturb a single byte either.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/delta.h"
#include "serve/protocol.h"
#include "serve/session.h"
#include "solvers/builtin.h"

namespace groupform::serve {
namespace {

/// 100 requests over one shared synthetic instance: a few solver
/// families, varying seeds and ids so every response line is distinct.
std::string HundredRequestStream() {
  const std::vector<std::string> solver_rotation = {"greedy", "localsearch",
                                                    "veckmeans", "sa"};
  std::string stream;
  for (int i = 0; i < 100; ++i) {
    Request request;
    request.id = common::StrFormat("r%03d", i);
    request.solver = solver_rotation[static_cast<std::size_t>(i) %
                                     solver_rotation.size()];
    request.instance.kind = "synthetic";
    request.instance.preset = "yahoo";
    request.instance.users = 40;
    request.instance.items = 30;
    request.instance.seed = 11;
    request.problem.k = 3;
    request.problem.groups = 5;
    request.seed = static_cast<std::uint64_t>(100 + i);
    request.include_groups = (i % 5 == 0);
    stream += RenderRequest(request);
    stream += '\n';
  }
  return stream;
}

/// 60 lines alternating plain requests with groupform.delta/1 requests
/// against the same dense instance, rotating the delta routes: greedy +
/// membership-only deltas (IncrementalFormer fast path), localsearch
/// (warm-start fold), and other solvers / rerate sequences (memoized
/// cold re-solve). Sequences repeat, so concurrent streams race on the
/// same epoch entries and solution-memo keys.
std::string InterleavedDeltaStream() {
  using Kind = core::PopulationDelta::Kind;
  const std::vector<std::vector<core::PopulationDelta>> sequences = {
      {},
      {{Kind::kRemoveUser, 3}},
      {{Kind::kRemoveUser, 3}, {Kind::kAddUser, 3}},
      {{Kind::kRemoveUser, 2}, {Kind::kRemoveUser, 5}},
      {{Kind::kRerate, 0, 1, 4.5}},
      {{Kind::kRemoveUser, 9}, {Kind::kRerate, 4, 2, 1.5}},
  };
  const std::vector<std::string> solver_rotation = {"greedy", "localsearch",
                                                    "veckmeans", "sa"};
  std::string stream;
  for (int i = 0; i < 60; ++i) {
    Request request;
    request.id = common::StrFormat("x%03d", i);
    request.solver = solver_rotation[static_cast<std::size_t>(i) %
                                     solver_rotation.size()];
    request.instance.kind = "dense";
    request.instance.users = 14;
    request.instance.items = 8;
    request.instance.clusters = 3;
    request.instance.seed = 5;
    request.problem.k = 3;
    request.problem.groups = 4;
    request.seed = static_cast<std::uint64_t>(50 + i / 6);
    request.include_groups = (i % 4 == 0);
    if (i % 2 == 1) {
      request.is_delta = true;
      request.deltas = sequences[static_cast<std::size_t>(i / 2) %
                                 sequences.size()];
    }
    stream += RenderRequest(request);
    stream += '\n';
  }
  return stream;
}

std::string ServeAt(int threads, int max_inflight,
                    const std::string& requests,
                    InstanceCache::Stats* stats_out = nullptr,
                    long long expect_served = 100) {
  common::ThreadPool::SetDefaultThreadCount(threads);
  Session session;
  std::istringstream in(requests);
  std::ostringstream out;
  const long long served = ServePipe(session, in, out, max_inflight);
  EXPECT_EQ(served, expect_served);
  if (stats_out != nullptr) *stats_out = session.cache().stats();
  return out.str();
}

class ServerDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { solvers::EnsureBuiltinSolversRegistered(); }
  void TearDown() override {
    common::ThreadPool::SetDefaultThreadCount(0);
  }
};

TEST_F(ServerDeterminismTest,
       HundredRequestsByteIdenticalAcrossThreadCounts) {
  const std::string requests = HundredRequestStream();
  InstanceCache::Stats stats;
  const std::string at_one = ServeAt(1, 4, requests, &stats);
  // One instance load serves all 100 requests.
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 99);
  EXPECT_EQ(ServeAt(2, 4, requests), at_one);
  EXPECT_EQ(ServeAt(8, 4, requests), at_one);
}

TEST_F(ServerDeterminismTest, PipeliningWindowNeverReordersResponses) {
  const std::string requests = HundredRequestStream();
  const std::string sequential = ServeAt(8, 1, requests);
  EXPECT_EQ(ServeAt(8, 16, requests), sequential);
  EXPECT_EQ(ServeAt(8, 100, requests), sequential);
  // Response ids arrive in request order.
  std::istringstream lines(sequential);
  std::string line;
  int index = 0;
  while (std::getline(lines, line)) {
    const auto response = ParseResponseLine(line);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->id, common::StrFormat("r%03d", index)) << index;
    ++index;
  }
  EXPECT_EQ(index, 100);
}

TEST_F(ServerDeterminismTest,
       InterleavedDeltaStreamByteIdenticalAcrossThreadsAndWindows) {
  const std::string requests = InterleavedDeltaStream();
  const std::string at_one =
      ServeAt(1, 1, requests, nullptr, /*expect_served=*/60);
  EXPECT_EQ(ServeAt(2, 4, requests, nullptr, 60), at_one);
  EXPECT_EQ(ServeAt(8, 16, requests, nullptr, 60), at_one);
  EXPECT_EQ(ServeAt(8, 60, requests, nullptr, 60), at_one);

  // Responses stay in request order, and every delta response carries an
  // epoch key while plain responses never do.
  std::istringstream lines(at_one);
  std::string line;
  int index = 0;
  while (std::getline(lines, line)) {
    const auto response = ParseResponseLine(line);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->id, common::StrFormat("x%03d", index)) << index;
    if (response->state == eval::SweepCellState::kOk) {
      EXPECT_EQ(response->is_delta, index % 2 == 1) << index;
      EXPECT_EQ(!response->epoch.empty(), index % 2 == 1) << index;
    }
    ++index;
  }
  EXPECT_EQ(index, 60);
}

TEST_F(ServerDeterminismTest, MixedOutcomeStreamKeepsOrderAndStates) {
  // One OK, one DNF (cap), one ERR (unknown solver), repeated — the CI
  // smoke job's shape, pinned here at several thread counts.
  std::string requests;
  for (int i = 0; i < 12; ++i) {
    Request request;
    request.id = common::StrFormat("m%02d", i);
    request.solver = (i % 3 == 2) ? "nosuch" : "greedy";
    request.instance.kind = "dense";
    request.instance.users = 10;
    request.instance.items = 6;
    request.instance.clusters = 2;
    request.instance.seed = 3;
    request.problem.k = 2;
    request.problem.groups = 3;
    if (i % 3 == 1) request.user_cap = 4;  // below the 10-user instance
    requests += RenderRequest(request);
    requests += '\n';
  }
  auto states_of = [](const std::string& output) {
    std::vector<eval::SweepCellState> states;
    std::istringstream lines(output);
    std::string line;
    while (std::getline(lines, line)) {
      const auto response = ParseResponseLine(line);
      EXPECT_TRUE(response.ok()) << response.status();
      if (response.ok()) states.push_back(response->state);
    }
    return states;
  };
  common::ThreadPool::SetDefaultThreadCount(4);
  Session session;
  std::istringstream in(requests);
  std::ostringstream out;
  EXPECT_EQ(ServePipe(session, in, out, /*max_inflight=*/6), 12);
  const auto states = states_of(out.str());
  ASSERT_EQ(states.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    const auto expected = (i % 3 == 0)   ? eval::SweepCellState::kOk
                          : (i % 3 == 1) ? eval::SweepCellState::kDnf
                                         : eval::SweepCellState::kErr;
    EXPECT_EQ(states[static_cast<std::size_t>(i)], expected) << i;
  }
}

TEST_F(ServerDeterminismTest, EmptyAndBlankLinesAreIgnored) {
  common::ThreadPool::SetDefaultThreadCount(1);
  Session session;
  Request request;
  request.solver = "greedy";
  request.instance.kind = "dense";
  request.instance.users = 6;
  request.instance.items = 4;
  std::istringstream in("\n\r\n" + RenderRequest(request) + "\r\n\n");
  std::ostringstream out;
  EXPECT_EQ(ServePipe(session, in, out, 4), 1);
  const auto response = ParseResponseLine(
      out.str().substr(0, out.str().size() - 1));  // strip trailing \n
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->state, eval::SweepCellState::kOk);
}

}  // namespace
}  // namespace groupform::serve
