// The GFB1 frame codec and the batch envelope (DESIGN.md §15): encode ∘
// decode is the identity frame-for-frame, decoding is incremental
// (kNeedMore until the frame completes), codec errors are unrecoverable
// and explicit, and the batch envelope round-trips with per-element
// request semantics — including rejection of empty, nested, and
// oversized batches.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"

namespace groupform::serve {
namespace {

constexpr std::size_t kTestPayloadCap = 1 << 20;

Request SmallRequest(const std::string& id) {
  Request request;
  request.id = id;
  request.solver = "greedy";
  request.instance.kind = "dense";
  request.instance.users = 8;
  request.instance.items = 5;
  request.instance.clusters = 2;
  request.instance.seed = 4;
  request.problem.k = 2;
  request.problem.groups = 3;
  return request;
}

TEST(FrameCodec, EncodeDecodeRoundTripsEveryType) {
  const FrameType types[] = {FrameType::kHello, FrameType::kRequest,
                             FrameType::kResponse, FrameType::kBatchRequest,
                             FrameType::kBatchResponse};
  const std::uint16_t credit_values[] = {0, 1, 16, 100, 65535};
  for (const FrameType type : types) {
    for (const std::uint16_t credits : credit_values) {
      const std::string payload = "{\"p\":" + std::to_string(credits) + "}";
      const std::string encoded = EncodeFrame(type, credits, payload);
      EXPECT_EQ(encoded.size(), kFrameHeaderBytes + payload.size());
      Frame frame;
      std::size_t consumed = 0;
      std::string error;
      ASSERT_EQ(DecodeFrame(encoded, kTestPayloadCap, &frame, &consumed,
                            &error),
                FrameDecodeResult::kFrame)
          << error;
      EXPECT_EQ(frame.type, type);
      EXPECT_EQ(frame.credits, credits);
      EXPECT_EQ(frame.payload, payload);
      EXPECT_EQ(consumed, encoded.size());
    }
  }
}

TEST(FrameCodec, EmptyPayloadRoundTrips) {
  const std::string encoded = EncodeFrame(FrameType::kHello, 3, "");
  Frame frame;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(
      DecodeFrame(encoded, kTestPayloadCap, &frame, &consumed, &error),
      FrameDecodeResult::kFrame);
  EXPECT_EQ(frame.payload, "");
  EXPECT_EQ(frame.credits, 3);
  EXPECT_EQ(consumed, kFrameHeaderBytes);
}

TEST(FrameCodec, DecodeIsIncrementalBytewise) {
  const std::string encoded =
      EncodeFrame(FrameType::kRequest, 0, "{\"id\":\"x\"}");
  // Every strict prefix must ask for more bytes, never error, never
  // produce a frame.
  for (std::size_t take = 0; take < encoded.size(); ++take) {
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(DecodeFrame(std::string_view(encoded).substr(0, take),
                          kTestPayloadCap, &frame, &consumed, &error),
              FrameDecodeResult::kNeedMore)
        << "prefix of " << take << " bytes";
  }
  // Two frames back to back: the first decode consumes exactly one.
  const std::string second = EncodeFrame(FrameType::kResponse, 1, "{}");
  const std::string both = encoded + second;
  Frame frame;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(both, kTestPayloadCap, &frame, &consumed, &error),
            FrameDecodeResult::kFrame);
  EXPECT_EQ(consumed, encoded.size());
  EXPECT_EQ(frame.type, FrameType::kRequest);
  ASSERT_EQ(DecodeFrame(std::string_view(both).substr(consumed),
                        kTestPayloadCap, &frame, &consumed, &error),
            FrameDecodeResult::kFrame);
  EXPECT_EQ(frame.type, FrameType::kResponse);
  EXPECT_EQ(frame.credits, 1);
}

TEST(FrameCodec, RejectsUnknownTypeBeforeTheHeaderCompletes) {
  std::string encoded = EncodeFrame(FrameType::kRequest, 0, "{}");
  encoded[4] = 9;  // no such frame type
  Frame frame;
  std::size_t consumed = 0;
  std::string error;
  // Even a 5-byte prefix is enough to fail fast.
  EXPECT_EQ(DecodeFrame(std::string_view(encoded).substr(0, 5),
                        kTestPayloadCap, &frame, &consumed, &error),
            FrameDecodeResult::kError);
  EXPECT_NE(error.find("unknown frame type"), std::string::npos);
  EXPECT_EQ(DecodeFrame(encoded, kTestPayloadCap, &frame, &consumed,
                        &error),
            FrameDecodeResult::kError);
}

TEST(FrameCodec, RejectsNonzeroFlags) {
  std::string encoded = EncodeFrame(FrameType::kRequest, 0, "{}");
  encoded[5] = 0x40;
  Frame frame;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(encoded, kTestPayloadCap, &frame, &consumed,
                        &error),
            FrameDecodeResult::kError);
  EXPECT_NE(error.find("flags"), std::string::npos);
}

TEST(FrameCodec, RejectsOversizePayloadWithoutBuffering) {
  // Header declares a payload bigger than the cap: error immediately,
  // even though the payload bytes never arrive.
  const std::string big(kTestPayloadCap + 1, 'x');
  const std::string encoded = EncodeFrame(FrameType::kRequest, 0, big);
  Frame frame;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(std::string_view(encoded).substr(
                            0, kFrameHeaderBytes),
                        kTestPayloadCap, &frame, &consumed, &error),
            FrameDecodeResult::kError);
  EXPECT_NE(error.find("exceeds"), std::string::npos);
}

TEST(FrameCodec, HelloRoundTrips) {
  Hello hello;
  hello.credits = 37;
  hello.max_frame_bytes = kMaxRequestLineBytes;
  hello.max_batch_requests = kMaxBatchRequests;
  const std::string payload = RenderHello(hello);
  const auto parsed = ParseHelloPayload(payload);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->credits, 37);
  EXPECT_EQ(parsed->max_frame_bytes, kMaxRequestLineBytes);
  EXPECT_EQ(parsed->max_batch_requests, kMaxBatchRequests);
  EXPECT_FALSE(ParseHelloPayload("{\"schema\":\"nope\"}").ok());
  EXPECT_FALSE(ParseHelloPayload("not json").ok());
}

TEST(BatchEnvelope, RenderParseIsTheIdentity) {
  BatchRequest batch;
  batch.id = "b-1";
  batch.requests.push_back(SmallRequest("a"));
  Request delta = SmallRequest("d");
  delta.is_delta = true;
  delta.deltas.push_back({core::PopulationDelta::Kind::kRemoveUser, 3, 0,
                          0.0});
  batch.requests.push_back(delta);
  const std::string line = RenderBatchRequest(batch);
  const auto parsed = ParseBatchRequestLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->id, "b-1");
  ASSERT_EQ(parsed->requests.size(), 2u);
  EXPECT_FALSE(parsed->requests[0].is_delta);
  EXPECT_TRUE(parsed->requests[1].is_delta);
  // parse ∘ render = identity, element-wise and envelope-wise.
  EXPECT_EQ(RenderBatchRequest(*parsed), line);
  EXPECT_EQ(RenderRequest(parsed->requests[0]),
            RenderRequest(batch.requests[0]));
}

TEST(BatchEnvelope, RejectsEmptyNestedAndOversizedBatches) {
  EXPECT_FALSE(
      ParseBatchRequestLine(
          "{\"schema\":\"groupform.batch/1\",\"id\":\"\",\"requests\":[]}")
          .ok());
  // A nested batch fails the element schema check, with the element
  // named in the error.
  BatchRequest inner;
  inner.requests.push_back(SmallRequest("a"));
  const std::string nested =
      "{\"schema\":\"groupform.batch/1\",\"id\":\"\",\"requests\":[" +
      RenderBatchRequest(inner) + "]}";
  const auto nested_or = ParseBatchRequestLine(nested);
  ASSERT_FALSE(nested_or.ok());
  EXPECT_NE(nested_or.status().message().find("requests[0]"),
            std::string::npos);
  // One element over the limit.
  std::string big =
      "{\"schema\":\"groupform.batch/1\",\"id\":\"\",\"requests\":[";
  const std::string element = RenderRequest(SmallRequest("x"));
  for (int i = 0; i <= kMaxBatchRequests; ++i) {
    if (i > 0) big += ',';
    big += element;
  }
  big += "]}";
  const auto big_or = ParseBatchRequestLine(big);
  ASSERT_FALSE(big_or.ok());
  EXPECT_NE(big_or.status().message().find("batch limit"),
            std::string::npos);
}

TEST(BatchEnvelope, BatchResponseRoundTrips) {
  BatchResponse batch;
  batch.id = "b-2";
  Response ok;
  ok.id = "a";
  ok.solver = "greedy";
  ok.objective = 1.25;
  ok.num_groups = 3;
  Response err;
  err.id = "b";
  err.state = eval::SweepCellState::kErr;
  err.status = common::Status::NotFound("no such solver");
  batch.responses.push_back(ok);
  batch.responses.push_back(err);
  const std::string line = RenderBatchResponse(batch);
  const auto parsed = ParseBatchResponseLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->responses.size(), 2u);
  EXPECT_EQ(parsed->responses[0].state, eval::SweepCellState::kOk);
  EXPECT_EQ(parsed->responses[1].state, eval::SweepCellState::kErr);
  EXPECT_EQ(RenderBatchResponse(*parsed), line);
}

TEST(BatchEnvelope, SplitReturnsElementDocsVerbatim) {
  // The broker's gather path: the splice inverse must hand back exactly
  // the bytes the worker rendered, id escapes and nested structure
  // notwithstanding.
  Response ok;
  ok.id = "a";
  ok.solver = "greedy";
  ok.objective = 1.0 / 3.0;  // a float whose formatting must not drift
  ok.num_groups = 2;
  Response err;
  err.id = "tricky\"],\\id";
  err.state = eval::SweepCellState::kErr;
  err.status = common::Status::NotFound("missing [brace, \"quote\"]");
  const std::vector<std::string> docs = {RenderResponse(ok),
                                         RenderResponse(err)};
  const std::string line =
      RenderBatchResponseFromDocs("id with \"quotes\" and ]},", docs);
  const auto split = SplitBatchResponseDocs(line);
  ASSERT_TRUE(split.ok()) << split.status();
  ASSERT_EQ(split->size(), docs.size());
  EXPECT_EQ((*split)[0], docs[0]);
  EXPECT_EQ((*split)[1], docs[1]);
}

TEST(BatchEnvelope, RequestSpliceRoundTripsThroughTheParser) {
  // The scatter side: a canonical batch line splits into verbatim
  // element docs, and sub-envelopes spliced from any subset of them
  // parse back to the matching Request subset.
  BatchRequest batch;
  batch.id = "b-9";
  batch.requests.push_back(SmallRequest("a"));
  batch.requests.push_back(SmallRequest("b"));
  batch.requests.push_back(SmallRequest("c"));
  const std::string line = RenderBatchRequest(batch);
  const auto split = SplitBatchRequestDocs(line);
  ASSERT_TRUE(split.ok()) << split.status();
  ASSERT_EQ(split->size(), 3u);
  EXPECT_EQ((*split)[1], RenderRequest(batch.requests[1]));
  const std::vector<std::string> subset = {(*split)[2], (*split)[0]};
  const auto sub = ParseBatchRequestLine(
      RenderBatchRequestFromDocs(batch.id, subset));
  ASSERT_TRUE(sub.ok()) << sub.status();
  ASSERT_EQ(sub->requests.size(), 2u);
  EXPECT_EQ(sub->id, "b-9");
  EXPECT_EQ(sub->requests[0].id, "c");
  EXPECT_EQ(sub->requests[1].id, "a");
}

TEST(BatchEnvelope, SplitRejectsNonCanonicalEnvelopes) {
  for (const std::string bad : {
           std::string("{\"schema\":\"groupform.response/1\"}"),
           std::string("{\"schema\":\"groupform.batchresponse/1\","
                       "\"responses\":[],\"id\":\"x\"}"),  // wrong order
           std::string("{\"schema\":\"groupform.batchresponse/1\","
                       "\"id\":\"x\",\"responses\":[{}"),  // truncated
           std::string("{\"schema\":\"groupform.batchresponse/1\","
                       "\"id\":\"x\",\"responses\":[{},]}"),  // empty elt
           std::string(""),
       }) {
    EXPECT_FALSE(SplitBatchResponseDocs(bad).ok()) << bad;
  }
  const auto empty = SplitBatchResponseDocs(
      "{\"schema\":\"groupform.batchresponse/1\",\"id\":\"\","
      "\"responses\":[]}");
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_TRUE(empty->empty());
}

TEST(BatchEnvelope, ParseAnyDispatchesOnSchema) {
  const auto single = ParseAnyRequestLine(RenderRequest(SmallRequest("s")));
  ASSERT_TRUE(single.ok()) << single.status();
  EXPECT_FALSE(single->is_batch);
  EXPECT_EQ(single->request.id, "s");
  BatchRequest batch;
  batch.id = "b";
  batch.requests.push_back(SmallRequest("a"));
  const auto any = ParseAnyRequestLine(RenderBatchRequest(batch));
  ASSERT_TRUE(any.ok()) << any.status();
  EXPECT_TRUE(any->is_batch);
  EXPECT_EQ(any->batch.id, "b");
  EXPECT_FALSE(ParseAnyRequestLine("{\"schema\":\"nope/9\"}").ok());
}

}  // namespace
}  // namespace groupform::serve
