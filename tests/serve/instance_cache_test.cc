// InstanceCache contract (DESIGN.md §12.3): hits share one matrix,
// eviction is LRU within the byte budget, and pinned entries (held by an
// in-flight request) are never dropped.
#include "serve/instance_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "common/status.h"
#include "serve/protocol.h"

namespace groupform::serve {
namespace {

/// A dense inline instance whose approximate cache footprint is
/// users*items ratings — sized so tests can budget exact entry counts.
InstanceSpec DenseInline(std::int32_t users, std::int32_t items,
                         double first_rating) {
  InstanceSpec spec;
  spec.kind = "inline";
  spec.users = users;
  spec.items = items;
  for (std::int32_t u = 0; u < users; ++u) {
    for (std::int32_t i = 0; i < items; ++i) {
      const double rating =
          (u == 0 && i == 0) ? first_rating : 1.0 + ((u + i) % 5);
      spec.ratings.push_back({u, i, rating});
    }
  }
  return spec;
}

TEST(InstanceCache, HitsShareOneLoadedMatrix) {
  InstanceCache cache(/*capacity_bytes=*/0);
  const InstanceSpec spec = DenseInline(6, 4, 5.0);
  const auto first = cache.Get(spec);
  ASSERT_TRUE(first.ok()) << first.status();
  const auto second = cache.Get(spec);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->dense.get(), second->dense.get());  // same matrix object
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.bytes, ApproximateMatrixBytes(*first->dense));
  EXPECT_EQ(stats.bytes, first->ChargedBytes());
}

TEST(InstanceCache, DistinctSpecsLoadDistinctEntries) {
  InstanceCache cache(/*capacity_bytes=*/0);
  const auto a = cache.Get(DenseInline(6, 4, 5.0));
  const auto b = cache.Get(DenseInline(6, 4, 4.0));  // one rating differs
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->dense.get(), b->dense.get());
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().entries, 2);
}

TEST(InstanceCache, EvictsLeastRecentlyUsedWithinBudget) {
  const InstanceSpec spec_a = DenseInline(8, 8, 5.0);
  const InstanceSpec spec_b = DenseInline(8, 8, 4.0);
  const InstanceSpec spec_c = DenseInline(8, 8, 3.0);
  // Budget fits two 8x8 instances but not three.
  std::int64_t one_entry;
  {
    InstanceCache sizing(0);
    one_entry = ApproximateMatrixBytes(*sizing.Get(spec_a)->dense);
  }
  InstanceCache cache(2 * one_entry);
  ASSERT_TRUE(cache.Get(spec_a).ok());
  ASSERT_TRUE(cache.Get(spec_b).ok());
  ASSERT_TRUE(cache.Get(spec_a).ok());  // refresh A: B is now LRU
  ASSERT_TRUE(cache.Get(spec_c).ok());  // must evict B, not A
  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2);
  ASSERT_TRUE(cache.Get(spec_a).ok());
  EXPECT_EQ(cache.stats().misses, 3);  // A still cached (no new miss)
  ASSERT_TRUE(cache.Get(spec_b).ok());
  EXPECT_EQ(cache.stats().misses, 4);  // B was the one evicted
}

TEST(InstanceCache, PinnedEntriesAreNeverEvicted) {
  const InstanceSpec spec_a = DenseInline(8, 8, 5.0);
  const InstanceSpec spec_b = DenseInline(8, 8, 4.0);
  const InstanceSpec spec_c = DenseInline(8, 8, 3.0);
  std::int64_t one_entry;
  {
    InstanceCache sizing(0);
    one_entry = ApproximateMatrixBytes(*sizing.Get(spec_a)->dense);
  }
  // Budget of one entry: every insertion wants to evict everything else.
  InstanceCache cache(one_entry);
  std::shared_ptr<const data::RatingMatrix> held;
  {
    auto pinned = cache.Get(spec_a);
    ASSERT_TRUE(pinned.ok());
    held = std::move(pinned)->dense;  // the only outside reference to A
  }
  ASSERT_TRUE(cache.Get(spec_b).ok());  // over budget, but A is pinned
  EXPECT_GE(cache.stats().bytes, one_entry);
  // A survived: getting it again is a hit.
  const auto hits_before = cache.stats().hits;
  ASSERT_TRUE(cache.Get(spec_a).ok());
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
  // Unpin; the next insertion may now evict A (and the unpinned B).
  held.reset();
  ASSERT_TRUE(cache.Get(spec_c).ok());
  EXPECT_EQ(cache.stats().evictions, 2);  // both A and B dropped
  ASSERT_TRUE(cache.Get(spec_a).ok());
  EXPECT_EQ(cache.stats().misses, 4);  // A was reloaded after eviction
}

TEST(InstanceCache, ZeroBudgetMeansUnlimited) {
  InstanceCache cache(/*capacity_bytes=*/0);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cache.Get(DenseInline(4, 4, 1.0 + i % 5)).ok());
  }
  EXPECT_EQ(cache.stats().evictions, 0);
}

TEST(InstanceCache, BuildFailuresDoNotPoisonTheCache) {
  InstanceCache cache(/*capacity_bytes=*/0);
  InstanceSpec missing;
  missing.kind = "csv";
  missing.path = "/nonexistent/ratings.csv";
  const auto result = cache.Get(missing);
  EXPECT_FALSE(result.ok());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(stats.hits, 0);
}

TEST(InstanceCache, BuildInstanceRejectsBadInlineRatings) {
  InstanceSpec spec;
  spec.kind = "inline";
  spec.users = 2;
  spec.items = 2;
  spec.ratings = {{0, 0, 5.0}, {7, 0, 3.0}};  // user 7 out of range
  const auto built = BuildInstance(spec);
  EXPECT_FALSE(built.ok());
}

}  // namespace
}  // namespace groupform::serve
