// Constraints and anytime partial results on the serving wire
// (DESIGN.md §17, docs/PROTOCOL.md "constraints"): well-formed
// constraint-bearing requests round-trip canonically and answer
// partitions that honour the spec; malformed constraints JSON answers
// ERR(INVALID_ARGUMENT) naming the field; an expired deadline turns
// into a partial=true OK for "anytime:" solvers where a plain solver
// answers DNF.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/protocol.h"
#include "serve/session.h"
#include "solvers/builtin.h"

namespace groupform::serve {
namespace {

/// A small dense-synthetic request the whole file shares: 12 users into
/// at most 4 groups.
Request BaseRequest(const std::string& id, const std::string& solver) {
  Request request;
  request.id = id;
  request.solver = solver;
  request.instance.kind = "dense";
  request.instance.users = 12;
  request.instance.items = 6;
  request.instance.clusters = 2;
  request.instance.seed = 7;
  request.problem.k = 3;
  request.problem.groups = 4;
  return request;
}

core::ConstraintSpec FullSpec() {
  core::ConstraintSpec spec;
  spec.min_group_size = 2;
  spec.max_group_size = 4;
  spec.must_link.push_back({0, 1});
  spec.cannot_link.push_back({2, 3});
  return spec;
}

class ConstrainedServeTest : public ::testing::Test {
 protected:
  void SetUp() override { solvers::EnsureBuiltinSolversRegistered(); }

  Response Answer(const Request& request) {
    const std::string line = session_.HandleLine(RenderRequest(request));
    const auto response = ParseResponseLine(line);
    EXPECT_TRUE(response.ok()) << response.status() << "\n" << line;
    return response.ok() ? *response : Response();
  }

  void ExpectInvalid(const std::string& line, const std::string& needle) {
    const std::string rendered = session_.HandleLine(line);
    const auto response = ParseResponseLine(rendered);
    ASSERT_TRUE(response.ok()) << response.status() << "\n" << rendered;
    EXPECT_EQ(response->state, eval::SweepCellState::kErr) << rendered;
    EXPECT_EQ(response->status.code(),
              common::StatusCode::kInvalidArgument)
        << rendered;
    EXPECT_NE(response->status.message().find(needle), std::string::npos)
        << "wanted \"" << needle << "\" in: " << response->status.message();
  }

  Session session_;
};

TEST_F(ConstrainedServeTest, ConstraintsRoundTripCanonically) {
  Request request = BaseRequest("rt", "pairgreedy");
  request.problem.constraints = FullSpec();
  request.problem.constraints.has_min_user_sat = true;
  request.problem.constraints.min_user_sat = 2.5;
  const std::string line = RenderRequest(request);
  const auto parsed = ParseRequestLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(RenderRequest(*parsed), line);
  EXPECT_EQ(parsed->problem.constraints.ToString(),
            request.problem.constraints.ToString());
  // The empty spec is invisible on the wire (PR-9 goldens stay intact).
  EXPECT_EQ(RenderRequest(BaseRequest("rt", "greedy"))
                .find("constraints"),
            std::string::npos);
}

TEST_F(ConstrainedServeTest, CapGreedyAnswersAPartitionWithinBounds) {
  Request request = BaseRequest("cap", "capgreedy");
  request.problem.constraints.min_group_size = 2;
  request.problem.constraints.max_group_size = 4;
  request.include_groups = true;
  const Response response = Answer(request);
  ASSERT_EQ(response.state, eval::SweepCellState::kOk) << response.status;
  EXPECT_EQ(response.solver, "capgreedy");
  ASSERT_TRUE(response.has_groups);
  for (const auto& group : response.groups) {
    EXPECT_GE(group.size(), 2u);
    EXPECT_LE(group.size(), 4u);
  }
  EXPECT_FALSE(response.partial);
  EXPECT_EQ(response.floor_violations, 0);
}

TEST_F(ConstrainedServeTest, MemoKeyDistinguishesConstraintSpecs) {
  // Same instance + solver, different caps: a memo collision would hand
  // the second request the first partition, violating its tighter cap.
  Request loose = BaseRequest("memo", "capgreedy");
  loose.problem.constraints.max_group_size = 6;
  loose.include_groups = true;
  Request tight = loose;
  tight.problem.constraints.max_group_size = 3;
  const Response first = Answer(loose);
  const Response second = Answer(tight);
  ASSERT_EQ(first.state, eval::SweepCellState::kOk) << first.status;
  ASSERT_EQ(second.state, eval::SweepCellState::kOk) << second.status;
  for (const auto& group : second.groups) {
    EXPECT_LE(group.size(), 3u);
  }
}

TEST_F(ConstrainedServeTest, UnsupportedSpecPartsAnswerErr) {
  Request request = BaseRequest("unsup", "capgreedy");
  request.problem.constraints = FullSpec();  // links: not capgreedy's job
  const Response response = Answer(request);
  EXPECT_EQ(response.state, eval::SweepCellState::kErr);
  EXPECT_EQ(response.status.code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(
      response.status.message().find("capgreedy supports size bounds only"),
      std::string::npos)
      << response.status.message();
}

TEST_F(ConstrainedServeTest, MalformedConstraintsJsonAnswersErr) {
  Request request = BaseRequest("bad", "pairgreedy");
  request.problem.constraints = FullSpec();
  const std::string valid = RenderRequest(request);
  // Splice into the rendered tokens so everything else stays well-formed.
  const auto with = [&](const std::string& token,
                        const std::string& replacement) {
    std::string line = valid;
    const auto at = line.find(token);
    EXPECT_NE(at, std::string::npos) << token << " not in: " << valid;
    if (at != std::string::npos) {
      line.replace(at, token.size(), replacement);
    }
    return line;
  };
  // Wrong pair arity / shape.
  ExpectInvalid(with("\"must_link\":[[0,1]]", "\"must_link\":[[0]]"),
                "two-element");
  ExpectInvalid(with("\"must_link\":[[0,1]]", "\"must_link\":[0,1]"),
                "must_link");
  // Structurally invalid specs fail at parse time, before any solve.
  ExpectInvalid(with("\"must_link\":[[0,1]]", "\"must_link\":[[1,1]]"),
                "links a user to itself");
  ExpectInvalid(with("\"cannot_link\":[[2,3]]", "\"cannot_link\":[[0,1]]"),
                "both must_link and cannot_link");
  ExpectInvalid(with("\"min_group_size\":2", "\"min_group_size\":0"),
                "min_group_size");
  ExpectInvalid(with("\"max_group_size\":4", "\"max_group_size\":1"),
                "below min_group_size");
  // Out-of-population link ids fail at execution with the same code.
  ExpectInvalid(with("\"cannot_link\":[[2,3]]", "\"cannot_link\":[[2,99]]"),
                "outside the population");
}

TEST_F(ConstrainedServeTest, ZeroBudgetOptionAnswersPartialOk) {
  Request request = BaseRequest("part", "anytime:localsearch");
  request.options.Set("deadline_ms", "0");
  const std::string line = session_.HandleLine(RenderRequest(request));
  const auto response = ParseResponseLine(line);
  ASSERT_TRUE(response.ok()) << response.status() << "\n" << line;
  ASSERT_EQ(response->state, eval::SweepCellState::kOk)
      << response->status;
  EXPECT_TRUE(response->partial) << line;
  EXPECT_NE(line.find("\"partial\":true"), std::string::npos) << line;
  // parse ∘ render is the identity on partial responses too.
  EXPECT_EQ(RenderResponse(*response), line);
}

TEST_F(ConstrainedServeTest, ExpiredDeadlineMapsByFailurePolicy) {
  // The same expired request deadline: DNF for a plain solver (work
  // declined by policy, DESIGN.md §12), partial=true OK for its anytime
  // sibling (zero remaining budget injected as deadline_ms).
  const auto past =
      std::chrono::steady_clock::now() - std::chrono::seconds(30);
  Request plain = BaseRequest("plain", "localsearch");
  plain.deadline_ms = 5;
  const Response declined = session_.Execute(plain, past);
  EXPECT_EQ(declined.state, eval::SweepCellState::kDnf) << declined.status;

  Request anytime = BaseRequest("any", "anytime:localsearch");
  anytime.deadline_ms = 5;
  const Response partial = session_.Execute(anytime, past);
  ASSERT_EQ(partial.state, eval::SweepCellState::kOk) << partial.status;
  EXPECT_TRUE(partial.partial);
  EXPECT_EQ(partial.solver, "anytime:localsearch");
  EXPECT_GT(partial.num_groups, 0);
}

TEST_F(ConstrainedServeTest, ClientDeadlineOptionWinsOverInjection) {
  // A client-set deadline_ms option is forwarded untouched even when the
  // request-level deadline has room left: the response is the same
  // partial greedy-seed snapshot as the zero-budget case.
  Request request = BaseRequest("win", "anytime:localsearch");
  request.deadline_ms = 60000;
  request.options.Set("deadline_ms", "0");
  const Response response = session_.Execute(request);
  ASSERT_EQ(response.state, eval::SweepCellState::kOk) << response.status;
  EXPECT_TRUE(response.partial);
}

TEST_F(ConstrainedServeTest, DeltaRequestsCarryConstraintsToo) {
  Request request = BaseRequest("delta", "capgreedy");
  request.is_delta = true;
  request.deltas.push_back(
      {core::PopulationDelta::Kind::kRemoveUser, 5});
  request.problem.constraints.max_group_size = 4;
  request.include_groups = true;
  const std::string line = session_.HandleLine(RenderRequest(request));
  const auto response = ParseResponseLine(line);
  ASSERT_TRUE(response.ok()) << response.status() << "\n" << line;
  ASSERT_EQ(response->state, eval::SweepCellState::kOk)
      << response->status;
  EXPECT_FALSE(response->epoch.empty());
  for (const auto& group : response->groups) {
    EXPECT_LE(group.size(), 4u);
  }
}

}  // namespace
}  // namespace groupform::serve
