// The TCP transport: an RPC-style client that sends one request and
// waits must receive its response while the connection stays open (the
// writer thread streams retired responses; nothing waits for EOF), an
// ephemeral port binds and reports itself, and Shutdown() unblocks
// Serve() with connections drained.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "solvers/builtin.h"

namespace groupform::serve {
namespace {

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

void SendLine(int fd, const std::string& line) {
  const std::string payload = line + "\n";
  ASSERT_EQ(::send(fd, payload.data(), payload.size(), 0),
            static_cast<ssize_t>(payload.size()));
}

/// Blocking read of exactly one '\n'-terminated line.
std::string ReadLine(int fd) {
  std::string line;
  char c;
  while (::recv(fd, &c, 1, 0) == 1) {
    if (c == '\n') return line;
    line.push_back(c);
  }
  ADD_FAILURE() << "connection closed before a full line arrived";
  return line;
}

std::string SmallRequest(const std::string& id) {
  Request request;
  request.id = id;
  request.solver = "greedy";
  request.instance.kind = "dense";
  request.instance.users = 8;
  request.instance.items = 5;
  request.instance.clusters = 2;
  request.instance.seed = 4;
  request.problem.k = 2;
  request.problem.groups = 3;
  return RenderRequest(request);
}

class TcpServerTest : public ::testing::Test {
 protected:
  void SetUp() override { solvers::EnsureBuiltinSolversRegistered(); }
  void TearDown() override {
    common::ThreadPool::SetDefaultThreadCount(0);
  }
};

TEST_F(TcpServerTest, RpcStyleClientGetsEachResponseWhileConnected) {
  common::ThreadPool::SetDefaultThreadCount(2);
  Session session;
  ServerConfig config;
  config.port = 0;  // ephemeral
  config.max_inflight = 4;
  TcpServer server(session, config);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  std::thread serving([&] { EXPECT_TRUE(server.Serve().ok()); });

  const int fd = ConnectLoopback(server.port());
  // One request at a time, waiting for each answer with the write side
  // still open — this hangs forever if responses are only flushed at
  // window-full or EOF.
  for (int i = 0; i < 3; ++i) {
    const std::string id = common::StrFormat("rpc-%d", i);
    SendLine(fd, SmallRequest(id));
    const auto response = ParseResponseLine(ReadLine(fd));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->id, id);
    EXPECT_EQ(response->state, eval::SweepCellState::kOk)
        << response->status;
  }
  ::close(fd);

  server.Shutdown();
  serving.join();
  EXPECT_EQ(session.cache().stats().misses, 1);
  EXPECT_EQ(session.cache().stats().hits, 2);
}

TEST_F(TcpServerTest, SendRequestLinesRoundTripsABatch) {
  common::ThreadPool::SetDefaultThreadCount(2);
  Session session;
  ServerConfig config;
  config.port = 0;
  TcpServer server(session, config);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { EXPECT_TRUE(server.Serve().ok()); });

  const auto responses = SendRequestLines(
      "127.0.0.1", server.port(),
      {SmallRequest("b0"), SmallRequest("b1"), SmallRequest("b2")});
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses->size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const auto response =
        ParseResponseLine((*responses)[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(response.ok()) << response.status();
    // Responses arrive in request order.
    EXPECT_EQ(response->id, common::StrFormat("b%d", i));
  }

  server.Shutdown();
  serving.join();
}

TEST_F(TcpServerTest, ShutdownUnblocksServeWithNoConnections) {
  common::ThreadPool::SetDefaultThreadCount(1);
  Session session;
  ServerConfig config;
  config.port = 0;
  TcpServer server(session, config);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { EXPECT_TRUE(server.Serve().ok()); });
  // Give Serve a moment to block in accept, then stop it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Shutdown();
  serving.join();
}

}  // namespace
}  // namespace groupform::serve
