// The serving side of the storage backends (DESIGN.md §14.3-§14.4):
// backend/qbits/kind=gfcm parse-render round-trips, exact cache byte
// accounting for all three backends (the mmap satellite: an instance
// whose on-disk size exceeds the whole cache budget still serves, charged
// only its fixed resident overhead), byte-identical responses across
// backends and thread counts, and the delta-requires-dense guard.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "data/binary_io.h"
#include "data/compact_matrix.h"
#include "data/synthetic.h"
#include "serve/instance_cache.h"
#include "serve/protocol.h"
#include "serve/session.h"
#include "solvers/builtin.h"

namespace groupform::serve {
namespace {

std::string TempGfcmPath() {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") +
         "/groupform_backend_test.gfcm";
}

/// Writes the GFCM packing of the canonical test instance (integer
/// ratings, so quantization is exact) and returns its path.
std::string WriteTestGfcm() {
  const auto matrix = data::GenerateLatentFactor(
      data::MovieLensLikeConfig(12, 8, /*seed=*/5));
  const auto compact = data::CompactRatingMatrix::FromMatrix(matrix, 8);
  const std::string path = TempGfcmPath();
  const auto saved = data::SaveCompactBinary(compact, path);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return path;
}

/// The same population as WriteTestGfcm, as a generated spec.
InstanceSpec SyntheticSpec(const std::string& backend) {
  InstanceSpec spec;
  spec.kind = "synthetic";
  spec.preset = "movielens";
  spec.users = 12;
  spec.items = 8;
  spec.seed = 5;
  spec.backend = backend;
  return spec;
}

Request TestRequest(InstanceSpec instance) {
  Request request;
  request.id = "b";
  request.solver = "greedy";
  request.instance = std::move(instance);
  request.problem.k = 3;
  request.problem.groups = 4;
  request.include_groups = true;
  return request;
}

class BackendTest : public ::testing::Test {
 protected:
  void SetUp() override { solvers::EnsureBuiltinSolversRegistered(); }
  void TearDown() override {
    common::ThreadPool::SetDefaultThreadCount(0);
  }
};

TEST_F(BackendTest, BackendFieldsParseRenderRoundTrip) {
  InstanceSpec gfcm;
  gfcm.kind = "gfcm";
  gfcm.backend = "mmap";  // the struct default "dense" is per-kind: gfcm's
                          // wire default is mmap
  gfcm.path = "/data/x.gfcm";
  Request request = TestRequest(gfcm);
  // gfcm defaults to mmap: the rendered line must not name the backend.
  const std::string rendered = RenderRequest(request);
  EXPECT_EQ(rendered.find("backend"), std::string::npos);
  auto parsed = ParseRequestLine(rendered);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->instance.backend, "mmap");
  EXPECT_EQ(RenderRequest(*parsed), rendered);

  request.instance.backend = "compact";
  const std::string compact_line = RenderRequest(request);
  EXPECT_NE(compact_line.find("\"backend\":\"compact\""),
            std::string::npos);
  parsed = ParseRequestLine(compact_line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->instance.backend, "compact");
  EXPECT_EQ(RenderRequest(*parsed), compact_line);

  Request synth = TestRequest(SyntheticSpec("compact"));
  synth.instance.qbits = 16;
  const std::string qline = RenderRequest(synth);
  EXPECT_NE(qline.find("\"qbits\":16"), std::string::npos);
  parsed = ParseRequestLine(qline);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->instance.qbits, 16);
  EXPECT_EQ(RenderRequest(*parsed), qline);
}

TEST_F(BackendTest, MmapRequiresAGfcmFile) {
  const auto parsed = ParseRequestLine(
      R"({"schema":"groupform.request/1","solver":"greedy",)"
      R"("instance":{"kind":"dense","backend":"mmap","users":4,"items":4}})");
  EXPECT_EQ(parsed.status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST_F(BackendTest, BackendsAreDistinctCacheEntries) {
  EXPECT_NE(SyntheticSpec("dense").CanonicalKey(),
            SyntheticSpec("compact").CanonicalKey());
  InstanceSpec q16 = SyntheticSpec("compact");
  q16.qbits = 16;
  EXPECT_NE(SyntheticSpec("compact").CanonicalKey(), q16.CanonicalKey());
  // Dense keys are unchanged from the pre-backend protocol.
  EXPECT_EQ(SyntheticSpec("dense").CanonicalKey(),
            "synthetic:movielens:12x8:s5");
}

TEST_F(BackendTest, CacheChargesExactBytesPerBackend) {
  const std::string path = WriteTestGfcm();
  InstanceCache cache(/*capacity_bytes=*/0);

  const auto dense = cache.Get(SyntheticSpec("dense"));
  ASSERT_TRUE(dense.ok()) << dense.status();
  EXPECT_EQ(cache.stats().bytes, dense->dense->ByteSize());
  EXPECT_EQ(dense->ChargedBytes(), dense->dense->ByteSize());
  const std::int64_t after_dense = cache.stats().bytes;

  const auto compact = cache.Get(SyntheticSpec("compact"));
  ASSERT_TRUE(compact.ok()) << compact.status();
  ASSERT_NE(compact->compact, nullptr);
  EXPECT_EQ(cache.stats().bytes,
            after_dense + compact->compact->ByteSize());
  EXPECT_LT(compact->compact->ByteSize(), dense->dense->ByteSize());

  InstanceSpec mmap_spec;
  mmap_spec.kind = "gfcm";
  mmap_spec.backend = "mmap";
  mmap_spec.path = path;
  const std::int64_t before_mmap = cache.stats().bytes;
  const auto mapped = cache.Get(mmap_spec);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  ASSERT_NE(mapped->compact, nullptr);
  EXPECT_TRUE(mapped->compact->mmap_backed());
  // The mmap regression the §14.3 contract pins: the payload is not
  // charged, only the fixed overhead.
  EXPECT_EQ(cache.stats().bytes,
            before_mmap + data::kMmapResidentOverheadBytes);
  std::remove(path.c_str());
}

TEST_F(BackendTest, ServesAnInstanceLargerThanTheCacheBudget) {
  // A population big enough that a quarter of its GFCM file still
  // dwarfs the fixed mmap overhead.
  const auto matrix = data::GenerateLatentFactor(
      data::MovieLensLikeConfig(1500, 64, /*seed=*/11));
  const auto compact = data::CompactRatingMatrix::FromMatrix(matrix, 8);
  const std::string path = TempGfcmPath();
  ASSERT_TRUE(data::SaveCompactBinary(compact, path).ok());
  std::int64_t file_bytes = 0;
  {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    ASSERT_NE(file, nullptr);
    std::fseek(file, 0, SEEK_END);
    file_bytes = std::ftell(file);
    std::fclose(file);
  }
  // A budget far below the file: only the mmap backend can serve this
  // without blowing the budget on every request.
  SessionConfig config;
  config.cache_bytes = file_bytes / 4;
  ASSERT_GT(config.cache_bytes, data::kMmapResidentOverheadBytes);
  Session session(config);

  InstanceSpec spec;
  spec.kind = "gfcm";
  spec.backend = "mmap";
  spec.path = path;

  // Byte-identical responses across thread counts, and no eviction churn
  // (the charged overhead stays within budget).
  common::ThreadPool::SetDefaultThreadCount(1);
  const Response baseline = session.Execute(TestRequest(spec));
  ASSERT_EQ(baseline.state, eval::SweepCellState::kOk) << baseline.status;
  const std::string baseline_line = RenderResponse(baseline);
  for (const int threads : {2, 8}) {
    common::ThreadPool::SetDefaultThreadCount(threads);
    const Response again = session.Execute(TestRequest(spec));
    EXPECT_EQ(RenderResponse(again), baseline_line)
        << "at " << threads << " threads";
  }
  EXPECT_LE(session.cache().stats().bytes, config.cache_bytes);
  EXPECT_EQ(session.cache().stats().evictions, 0);
  std::remove(path.c_str());
}

TEST_F(BackendTest, AllBackendsAnswerIntegerInstancesIdentically) {
  const std::string path = WriteTestGfcm();
  Session session;
  common::ThreadPool::SetDefaultThreadCount(1);
  const Response dense = session.Execute(TestRequest(SyntheticSpec("dense")));
  ASSERT_EQ(dense.state, eval::SweepCellState::kOk) << dense.status;
  const Response compact =
      session.Execute(TestRequest(SyntheticSpec("compact")));
  InstanceSpec gfcm;
  gfcm.kind = "gfcm";
  gfcm.backend = "mmap";
  gfcm.path = path;
  const Response mapped = session.Execute(TestRequest(gfcm));
  // Integer ratings quantize exactly, so objective, metrics, and the
  // full partition agree bit-for-bit; only the echoed id/instance could
  // differ, and TestRequest pins those equal.
  EXPECT_EQ(RenderResponse(compact), RenderResponse(dense));
  EXPECT_EQ(RenderResponse(mapped), RenderResponse(dense));
  std::remove(path.c_str());
}

TEST_F(BackendTest, DeltaStreamsRequireTheDenseBackend) {
  Session session;
  Request request = TestRequest(SyntheticSpec("compact"));
  request.is_delta = true;
  core::PopulationDelta delta;
  delta.kind = core::PopulationDelta::Kind::kRemoveUser;
  delta.user = 3;
  request.deltas.push_back(delta);
  const Response response = session.ExecuteDelta(request);
  EXPECT_EQ(response.state, eval::SweepCellState::kErr);
  EXPECT_EQ(response.status.code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_NE(response.status.message().find("dense backend"),
            std::string::npos);
}

}  // namespace
}  // namespace groupform::serve
