// The paper's Theorems 2 and 3 as executable properties: on randomized
// small instances, the greedy LM algorithms stay within an additive r_max
// (Min aggregation) or k * r_max (Sum aggregation) of the subset-DP
// optimum. Also checks universal sanity properties of every solver
// (greedy <= optimum, valid partitions, no overstated objectives).
#include <tuple>

#include <gtest/gtest.h>

#include "core/formation.h"
#include "core/greedy.h"
#include "data/synthetic.h"
#include "exact/subset_dp.h"
#include "grouprec/semantics.h"

namespace groupform {
namespace {

using core::FormationProblem;
using grouprec::Aggregation;
using grouprec::Semantics;

struct Case {
  int num_users;
  int num_items;
  int k;
  int ell;
  std::uint64_t seed;
};

class ErrorBoundTest
    : public testing::TestWithParam<std::tuple<Case, Aggregation>> {};

FormationProblem Problem(const data::RatingMatrix& matrix,
                         Semantics semantics, Aggregation aggregation, int k,
                         int ell) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = semantics;
  problem.aggregation = aggregation;
  problem.k = k;
  problem.max_groups = ell;
  return problem;
}

TEST_P(ErrorBoundTest, GreedyLmIsWithinTheoremBoundOfOptimal) {
  const auto [c, aggregation] = GetParam();
  const data::RatingScale scale{1.0, 5.0};
  const auto matrix =
      data::GenerateUniformDense(c.num_users, c.num_items, scale, c.seed);
  const auto problem = Problem(matrix, Semantics::kLeastMisery, aggregation,
                               c.k, c.ell);
  const auto grd = core::RunGreedy(problem);
  ASSERT_TRUE(grd.ok()) << grd.status();
  const auto opt = exact::SubsetDpSolver(problem).Run();
  ASSERT_TRUE(opt.ok()) << opt.status();

  // Greedy can never beat the optimum.
  EXPECT_LE(grd->objective, opt->objective + 1e-9) << problem.ToString();

  // Theorem 2 / Theorem 3 absolute error bound.
  const double bound = aggregation == Aggregation::kSum
                           ? static_cast<double>(c.k) * scale.max
                           : scale.max;
  EXPECT_LE(opt->objective - grd->objective, bound + 1e-9)
      << problem.ToString();

  // Both report partitions that validate and objectives that recompute.
  EXPECT_TRUE(core::ValidatePartition(problem, *grd).ok());
  EXPECT_TRUE(core::ValidatePartition(problem, *opt).ok());
  EXPECT_NEAR(core::RecomputeObjective(problem, *grd), grd->objective, 1e-9);
  EXPECT_NEAR(core::RecomputeObjective(problem, *opt), opt->objective, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, ErrorBoundTest,
    testing::Combine(
        testing::Values(Case{6, 4, 1, 2, 1}, Case{6, 4, 2, 2, 2},
                        Case{7, 5, 2, 3, 3}, Case{8, 5, 3, 3, 4},
                        Case{8, 6, 2, 4, 5}, Case{9, 4, 2, 3, 6},
                        Case{9, 6, 3, 2, 7}, Case{10, 5, 2, 3, 8},
                        Case{10, 6, 1, 4, 9}, Case{11, 5, 2, 5, 10}),
        testing::Values(Aggregation::kMin, Aggregation::kSum,
                        Aggregation::kMax)));

// AV has no guarantee, but greedy must still never exceed the optimum and
// must produce valid partitions.
class AvSanityTest
    : public testing::TestWithParam<std::tuple<Case, Aggregation>> {};

TEST_P(AvSanityTest, GreedyAvNeverExceedsOptimal) {
  const auto [c, aggregation] = GetParam();
  const auto matrix = data::GenerateUniformDense(
      c.num_users, c.num_items, data::RatingScale{1.0, 5.0}, c.seed);
  const auto problem = Problem(matrix, Semantics::kAggregateVoting,
                               aggregation, c.k, c.ell);
  const auto grd = core::RunGreedy(problem);
  ASSERT_TRUE(grd.ok()) << grd.status();
  const auto opt = exact::SubsetDpSolver(problem).Run();
  ASSERT_TRUE(opt.ok()) << opt.status();
  EXPECT_LE(grd->objective, opt->objective + 1e-9) << problem.ToString();
  EXPECT_TRUE(core::ValidatePartition(problem, *grd).ok());
  EXPECT_NEAR(core::RecomputeObjective(problem, *grd), grd->objective,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, AvSanityTest,
    testing::Combine(testing::Values(Case{6, 4, 2, 2, 21},
                                     Case{7, 5, 2, 3, 22},
                                     Case{8, 5, 3, 3, 23},
                                     Case{9, 6, 2, 4, 24},
                                     Case{10, 5, 1, 3, 25}),
                     testing::Values(Aggregation::kMin, Aggregation::kSum,
                                     Aggregation::kMax)));

}  // namespace
}  // namespace groupform
