// Size-constrained formation: constraint satisfaction, honest re-scoring,
// and infeasibility detection.
#include <gtest/gtest.h>

#include "core/constrained.h"
#include "core/greedy.h"
#include "data/synthetic.h"
#include "grouprec/semantics.h"

namespace groupform {
namespace {

using core::FormationProblem;
using core::SizeConstraints;
using grouprec::Aggregation;
using grouprec::Semantics;

FormationProblem Problem(const data::RatingMatrix& matrix,
                         Semantics semantics, Aggregation aggregation, int k,
                         int ell) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = semantics;
  problem.aggregation = aggregation;
  problem.k = k;
  problem.max_groups = ell;
  return problem;
}

void ExpectSizesWithin(const core::FormationResult& result,
                       const SizeConstraints& constraints) {
  for (const auto& g : result.groups) {
    EXPECT_GE(static_cast<int>(g.members.size()),
              constraints.min_group_size);
    if (constraints.max_group_size > 0) {
      EXPECT_LE(static_cast<int>(g.members.size()),
                constraints.max_group_size);
    }
  }
}

TEST(SizeConstrained, EnforcesMinimumAndMaximum) {
  const auto matrix = data::GenerateLatentFactor(
      data::YahooMusicLikeConfig(200, 60, 501));
  for (const auto semantics :
       {Semantics::kLeastMisery, Semantics::kAggregateVoting}) {
    const auto problem =
        Problem(matrix, semantics, Aggregation::kMin, 4, 20);
    SizeConstraints constraints;
    constraints.min_group_size = 5;
    constraints.max_group_size = 40;
    const auto result =
        core::RunSizeConstrainedGreedy(problem, constraints);
    ASSERT_TRUE(result.ok()) << result.status();
    ExpectSizesWithin(*result, constraints);
    EXPECT_TRUE(core::ValidatePartition(problem, *result).ok());
    // The reported objective is honest (matches recomputation).
    EXPECT_NEAR(core::RecomputeObjective(problem, *result),
                result->objective, 1e-9);
  }
}

TEST(SizeConstrained, UnconstrainedEqualsPlainGreedy) {
  const auto matrix = data::GenerateLatentFactor(
      data::YahooMusicLikeConfig(120, 40, 503));
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kMax, 3, 8);
  const auto constrained =
      core::RunSizeConstrainedGreedy(problem, SizeConstraints{});
  const auto greedy = core::RunGreedy(problem);
  ASSERT_TRUE(constrained.ok());
  ASSERT_TRUE(greedy.ok());
  EXPECT_NEAR(constrained->objective, greedy->objective, 1e-9);
  EXPECT_EQ(constrained->num_groups(), greedy->num_groups());
}

TEST(SizeConstrained, MaxSizeRepairCostsLittleUnderLm) {
  // Splitting an oversized LM group is free (every part's LM scores are
  // pointwise >= the whole's), but once the group budget is exhausted the
  // repair rebalances overflow into other groups, which can lower their
  // LM scores — the constrained objective may dip slightly below the
  // unconstrained greedy's, never catastrophically.
  const auto matrix = data::GenerateLatentFactor(
      data::YahooMusicLikeConfig(150, 50, 505));
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kMax, 3, 30);
  const auto greedy = core::RunGreedy(problem);
  ASSERT_TRUE(greedy.ok());
  SizeConstraints constraints;
  constraints.max_group_size = 20;
  const auto result = core::RunSizeConstrainedGreedy(problem, constraints);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectSizesWithin(*result, constraints);
  EXPECT_GE(result->objective, 0.85 * greedy->objective);
  // (A "plenty of spare slots" variant would not exercise anything new:
  // the LM greedy always consumes every one of its ell slots — splitting
  // buckets is free — so the repair always runs in the rebalancing
  // regime.)
}

TEST(SizeConstrained, RejectsInfeasibleConstraints) {
  const auto matrix = data::GenerateLatentFactor(
      data::YahooMusicLikeConfig(100, 30, 507));
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kMin, 3, 4);
  SizeConstraints too_small_cap;
  too_small_cap.max_group_size = 10;  // 4 groups x 10 < 100 users
  EXPECT_EQ(core::RunSizeConstrainedGreedy(problem, too_small_cap)
                .status()
                .code(),
            common::StatusCode::kInvalidArgument);

  SizeConstraints inverted;
  inverted.min_group_size = 10;
  inverted.max_group_size = 5;
  EXPECT_FALSE(
      core::RunSizeConstrainedGreedy(problem, inverted).ok());

  SizeConstraints zero_min;
  zero_min.min_group_size = 0;
  EXPECT_FALSE(core::RunSizeConstrainedGreedy(problem, zero_min).ok());
}

TEST(SizeConstrained, TightCapacityRebalancesWithoutSpareSlots) {
  // 60 users into exactly 6 groups of <= 10: no spare slots, so the
  // repair must rebalance overflow rather than split into new groups.
  const auto matrix = data::GenerateLatentFactor(
      data::YahooMusicLikeConfig(60, 30, 509));
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kMin, 3, 6);
  SizeConstraints constraints;
  constraints.max_group_size = 10;
  const auto result = core::RunSizeConstrainedGreedy(problem, constraints);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectSizesWithin(*result, constraints);
  EXPECT_TRUE(core::ValidatePartition(problem, *result).ok());
}

}  // namespace
}  // namespace groupform
