// SolverRegistry semantics: registration, lookup, duplicate rejection,
// option-bag parsing, and end-to-end Solve through a registered stub.
#include "core/solver_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "core/formation.h"
#include "core/solver.h"
#include "data/synthetic.h"

namespace groupform::core {
namespace {

/// A minimal solver: one group holding every user, scored honestly via the
/// problem's scorer — a valid partition for any instance with ell >= 1.
class OneGroupSolver : public FormationSolver {
 public:
  OneGroupSolver(const FormationProblem& problem, double bonus)
      : problem_(problem), bonus_(bonus) {}

  common::StatusOr<FormationResult> Solve(std::uint64_t) const override {
    GF_RETURN_IF_ERROR(problem_.Validate());
    FormedGroup group;
    for (UserId u = 0; u < problem_.matrix->num_users(); ++u) {
      group.members.push_back(u);
    }
    const auto scorer = problem_.MakeScorer();
    group.recommendation = ComputeGroupList(problem_, scorer, group.members);
    group.satisfaction = AggregateListSatisfaction(
        problem_, static_cast<int>(group.members.size()),
        group.recommendation);
    FormationResult result;
    result.algorithm = name();
    result.objective = group.satisfaction + bonus_;
    result.groups.push_back(std::move(group));
    return result;
  }
  std::string name() const override { return "one-group-stub"; }
  std::string description() const override { return "everyone together"; }

 private:
  FormationProblem problem_;
  double bonus_;
};

SolverRegistry::Factory StubFactory() {
  return [](const FormationProblem& problem, const SolverOptions& options) {
    return common::StatusOr<std::unique_ptr<FormationSolver>>(
        std::make_unique<OneGroupSolver>(problem,
                                         options.GetDouble("bonus", 0.0)));
  };
}

FormationProblem SmallProblem(const data::RatingMatrix& matrix) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.k = 2;
  problem.max_groups = 3;
  return problem;
}

TEST(SolverRegistry, RegisterLookupCreateSolveUnregister) {
  auto& registry = SolverRegistry::Global();
  ASSERT_TRUE(
      registry.Register("one-group-stub", "everyone together", StubFactory())
          .ok());
  EXPECT_TRUE(registry.Contains("one-group-stub"));
  const auto description = registry.Description("one-group-stub");
  ASSERT_TRUE(description.ok());
  EXPECT_EQ(*description, "everyone together");

  const auto matrix =
      data::GenerateUniformDense(8, 5, data::RatingScale{1.0, 5.0}, 11);
  const auto problem = SmallProblem(matrix);
  const auto solver = registry.Create("one-group-stub", problem);
  ASSERT_TRUE(solver.ok()) << solver.status();
  EXPECT_EQ((*solver)->name(), "one-group-stub");
  const auto result = (*solver)->Solve();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(ValidatePartition(problem, *result).ok());

  EXPECT_TRUE(registry.Unregister("one-group-stub"));
  EXPECT_FALSE(registry.Contains("one-group-stub"));
  EXPECT_FALSE(registry.Unregister("one-group-stub"));
}

TEST(SolverRegistry, FactoryReceivesTheOptionBag) {
  auto& registry = SolverRegistry::Global();
  ASSERT_TRUE(registry.Register("bonus-stub", "stub", StubFactory()).ok());
  const auto matrix =
      data::GenerateUniformDense(6, 4, data::RatingScale{1.0, 5.0}, 13);
  const auto problem = SmallProblem(matrix);

  const auto plain = registry.Create("bonus-stub", problem);
  ASSERT_TRUE(plain.ok());
  const auto with_bonus = registry.Create(
      "bonus-stub", problem, SolverOptions().Set("bonus", "2.5"));
  ASSERT_TRUE(with_bonus.ok());
  const auto base = (*plain)->Solve();
  const auto boosted = (*with_bonus)->Solve();
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(boosted.ok());
  EXPECT_DOUBLE_EQ(boosted->objective, base->objective + 2.5);
  registry.Unregister("bonus-stub");
}

TEST(SolverRegistry, DuplicateNameIsRejectedFirstRegistrationWins) {
  auto& registry = SolverRegistry::Global();
  ASSERT_TRUE(registry.Register("dup-stub", "first", StubFactory()).ok());
  const auto second = registry.Register("dup-stub", "second", StubFactory());
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.code(), common::StatusCode::kFailedPrecondition);
  const auto description = registry.Description("dup-stub");
  ASSERT_TRUE(description.ok());
  EXPECT_EQ(*description, "first");
  registry.Unregister("dup-stub");
}

TEST(SolverRegistry, EmptyNameAndNullFactoryAreInvalid) {
  auto& registry = SolverRegistry::Global();
  EXPECT_EQ(registry.Register("", "x", StubFactory()).code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register("null-factory", "x", nullptr).code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_FALSE(registry.Contains("null-factory"));
}

TEST(SolverRegistry, UnknownNameListsAvailableSolvers) {
  auto& registry = SolverRegistry::Global();
  ASSERT_TRUE(registry.Register("visible-stub", "x", StubFactory()).ok());
  const auto matrix =
      data::GenerateUniformDense(4, 3, data::RatingScale{1.0, 5.0}, 17);
  const auto problem = SmallProblem(matrix);
  const auto missing = registry.Create("no-such-solver", problem);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), common::StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find("visible-stub"),
            std::string::npos);
  registry.Unregister("visible-stub");
}

TEST(SolverRegistry, NamesAreSorted) {
  auto& registry = SolverRegistry::Global();
  ASSERT_TRUE(registry.Register("zz-stub", "z", StubFactory()).ok());
  ASSERT_TRUE(registry.Register("aa-stub", "a", StubFactory()).ok());
  const auto names = registry.Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  registry.Unregister("zz-stub");
  registry.Unregister("aa-stub");
}

/// A factory that validates its parallelism knob the way the built-in
/// localsearch factory does: a malformed or negative shard_min_items
/// must fail Create with INVALID_ARGUMENT, not silently keep the default.
SolverRegistry::Factory CheckedFactory() {
  return [](const FormationProblem& problem, const SolverOptions& options)
             -> common::StatusOr<std::unique_ptr<FormationSolver>> {
    GF_ASSIGN_OR_RETURN(
        const long long shard_min_items,
        options.GetCheckedInt("shard_min_items", 4096, /*min_value=*/0));
    (void)shard_min_items;
    return common::StatusOr<std::unique_ptr<FormationSolver>>(
        std::make_unique<OneGroupSolver>(problem, 0.0));
  };
}

TEST(SolverRegistry, BadKnobValuesFailAtLookupTimeUnknownNamesAreNotFound) {
  auto& registry = SolverRegistry::Global();
  ASSERT_TRUE(
      registry.Register("checked-stub", "strict knobs", CheckedFactory())
          .ok());
  const auto matrix =
      data::GenerateUniformDense(6, 4, data::RatingScale{1.0, 5.0}, 19);
  const auto problem = SmallProblem(matrix);

  // Unknown solver: NOT_FOUND, regardless of options.
  const auto missing = registry.Create(
      "no-such-solver", problem,
      SolverOptions().Set("shard_min_items", "64"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), common::StatusCode::kNotFound);

  // Known solver, malformed knob: INVALID_ARGUMENT naming the key.
  const auto garbage = registry.Create(
      "checked-stub", problem,
      SolverOptions().Set("shard_min_items", "zebra"));
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(garbage.status().message().find("shard_min_items"),
            std::string::npos);

  // Known solver, negative knob: INVALID_ARGUMENT.
  const auto negative = registry.Create(
      "checked-stub", problem,
      SolverOptions().Set("shard_min_items", "-1"));
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), common::StatusCode::kInvalidArgument);

  // Valid and absent values still construct.
  EXPECT_TRUE(registry
                  .Create("checked-stub", problem,
                          SolverOptions().Set("shard_min_items", "512"))
                  .ok());
  EXPECT_TRUE(registry.Create("checked-stub", problem).ok());
  registry.Unregister("checked-stub");
}

TEST(SolverOptions, GetCheckedIntValidatesPresentValues) {
  SolverOptions options;
  options.Set("good", "128").Set("bad", "zebra").Set("negative", "-7");
  const auto absent = options.GetCheckedInt("missing", 42, 0);
  ASSERT_TRUE(absent.ok());
  EXPECT_EQ(*absent, 42);
  const auto good = options.GetCheckedInt("good", 0, 0);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 128);
  EXPECT_EQ(options.GetCheckedInt("bad", 0, 0).status().code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_EQ(options.GetCheckedInt("negative", 0, 0).status().code(),
            common::StatusCode::kInvalidArgument);
  // min_value is the caller's floor, not hardcoded zero.
  const auto negative_ok = options.GetCheckedInt("negative", 0, -10);
  ASSERT_TRUE(negative_ok.ok());
  EXPECT_EQ(*negative_ok, -7);
}

TEST(SolverOptions, GetCheckedBoolValidatesPresentValues) {
  SolverOptions options;
  options.Set("on", "true").Set("off", "0").Set("bare", "").Set("bad",
                                                                "yes");
  const auto absent = options.GetCheckedBool("missing", true);
  ASSERT_TRUE(absent.ok());
  EXPECT_TRUE(*absent);
  const auto on = options.GetCheckedBool("on", false);
  ASSERT_TRUE(on.ok());
  EXPECT_TRUE(*on);
  const auto off = options.GetCheckedBool("off", true);
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(*off);
  const auto bare = options.GetCheckedBool("bare", false);
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(*bare);  // bare key = true, like GetBool
  EXPECT_EQ(options.GetCheckedBool("bad", false).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(SolverOptions, TypedGettersFallBackOnMissingOrMalformed) {
  SolverOptions options;
  options.Set("int", "42").Set("dbl", "2.5").Set("flag", "true");
  options.Set("bad", "zebra").Set("bare", "");
  EXPECT_EQ(options.GetInt("int", 7), 42);
  EXPECT_EQ(options.GetInt("missing", 7), 7);
  EXPECT_EQ(options.GetInt("bad", 7), 7);
  EXPECT_DOUBLE_EQ(options.GetDouble("dbl", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(options.GetDouble("missing", 1.0), 1.0);
  EXPECT_TRUE(options.GetBool("flag", false));
  EXPECT_TRUE(options.GetBool("bare", false));  // bare key = true
  EXPECT_FALSE(options.GetBool("missing", false));
  EXPECT_FALSE(options.GetBool("bad", false));
  EXPECT_EQ(options.GetString("bad", "d"), "zebra");
  EXPECT_EQ(options.GetString("missing", "d"), "d");
  EXPECT_TRUE(options.Has("int"));
  EXPECT_FALSE(options.Has("missing"));
}

}  // namespace
}  // namespace groupform::core
