// Edge-case behaviour of the greedy formers: degenerate parameters, sparse
// data, missing-rating policies, and determinism.
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/formation.h"
#include "core/greedy.h"
#include "data/paper_examples.h"
#include "data/synthetic.h"
#include "grouprec/semantics.h"

namespace groupform {
namespace {

using core::FormationProblem;
using grouprec::Aggregation;
using grouprec::MissingRatingPolicy;
using grouprec::Semantics;

FormationProblem Problem(const data::RatingMatrix& matrix,
                         Semantics semantics, Aggregation aggregation, int k,
                         int ell) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = semantics;
  problem.aggregation = aggregation;
  problem.k = k;
  problem.max_groups = ell;
  return problem;
}

TEST(GreedyEdgeCases, RejectsInvalidProblems) {
  const auto matrix = data::PaperExample1();
  auto problem = Problem(matrix, Semantics::kLeastMisery, Aggregation::kMin,
                         1, 3);
  problem.k = 0;
  EXPECT_FALSE(core::RunGreedy(problem).ok());
  problem.k = 1;
  problem.max_groups = 0;
  EXPECT_FALSE(core::RunGreedy(problem).ok());
  problem.max_groups = 3;
  problem.matrix = nullptr;
  EXPECT_FALSE(core::RunGreedy(problem).ok());
}

TEST(GreedyEdgeCases, SingleGroupPutsEveryoneTogether) {
  const auto matrix = data::PaperExample1();
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kMin, 2, 1);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_groups(), 1);
  EXPECT_EQ(result->groups[0].members.size(), 6u);
  EXPECT_TRUE(core::ValidatePartition(problem, *result).ok());
}

TEST(GreedyEdgeCases, MoreGroupsThanUsersFullySatisfiesEveryone) {
  const auto matrix = data::PaperExample1();
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kMin, 1, 100);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok()) << result.status();
  // With an unconstrained group budget under LM, splitting buckets down to
  // singletons is free (every subset of a bucket keeps the bucket score),
  // so each user lands in their own fully-satisfied group and the
  // objective reaches its maximum (the paper's own observation that the
  // objective peaks when #groups = #users): 4+5+5+5+3+5 = 27.
  EXPECT_EQ(result->num_groups(), 6);
  EXPECT_DOUBLE_EQ(result->objective, 27.0);
  EXPECT_TRUE(core::ValidatePartition(problem, *result).ok());
}

TEST(GreedyEdgeCases, KLargerThanCatalogueStillPartitions) {
  const auto matrix = data::PaperExample1();
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kSum, 10, 3);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(core::ValidatePartition(problem, *result).ok());
  // Lists cannot exceed the 3-item catalogue.
  for (const auto& g : result->groups) {
    EXPECT_LE(g.recommendation.size(), 3);
  }
}

TEST(GreedyEdgeCases, SingleUserPopulation) {
  const auto dense = data::RatingMatrix::FromDense(
      {{5.0, 3.0, 1.0}}, data::RatingScale{1.0, 5.0});
  ASSERT_TRUE(dense.ok());
  const auto problem = Problem(*dense, Semantics::kLeastMisery,
                               Aggregation::kMin, 2, 3);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_groups(), 1);
  EXPECT_EQ(result->groups[0].members, (std::vector<UserId>{0}));
  // Top-2 of the single user: i1 (5), i2 (3); Min aggregation reads 3.
  EXPECT_DOUBLE_EQ(result->objective, 3.0);
}

TEST(GreedyEdgeCases, DeterministicAcrossRuns) {
  const auto config = data::YahooMusicLikeConfig(300, 80, /*seed=*/5);
  const auto matrix = data::GenerateLatentFactor(config);
  for (const auto aggregation :
       {Aggregation::kMax, Aggregation::kMin, Aggregation::kSum}) {
    for (const auto semantics :
         {Semantics::kLeastMisery, Semantics::kAggregateVoting}) {
      const auto problem = Problem(matrix, semantics, aggregation, 5, 10);
      const auto a = core::RunGreedy(problem);
      const auto b = core::RunGreedy(problem);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_DOUBLE_EQ(a->objective, b->objective);
      ASSERT_EQ(a->num_groups(), b->num_groups());
      for (int g = 0; g < a->num_groups(); ++g) {
        EXPECT_EQ(a->groups[static_cast<std::size_t>(g)].members,
                  b->groups[static_cast<std::size_t>(g)].members);
      }
    }
  }
}

TEST(GreedyEdgeCases, SparseDataAllPoliciesProduceValidPartitions) {
  data::SyntheticConfig config;
  config.num_users = 120;
  config.num_items = 60;
  config.min_ratings_per_user = 3;
  config.max_ratings_per_user = 8;
  config.seed = 11;
  const auto matrix = data::GenerateLatentFactor(config);
  for (const auto policy :
       {MissingRatingPolicy::kScaleMin, MissingRatingPolicy::kZero,
        MissingRatingPolicy::kSkipUser}) {
    for (const auto semantics :
         {Semantics::kLeastMisery, Semantics::kAggregateVoting}) {
      auto problem =
          Problem(matrix, semantics, Aggregation::kMin, 5, 8);
      problem.missing = policy;
      const auto result = core::RunGreedy(problem);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_TRUE(core::ValidatePartition(problem, *result).ok());
    }
  }
}

TEST(GreedyEdgeCases, TruncatedCandidateDepthStaysValidAndCloseToFull) {
  const auto config = data::YahooMusicLikeConfig(400, 150, /*seed=*/23);
  const auto matrix = data::GenerateLatentFactor(config);
  auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kMin, 5, 10);
  const auto full = core::RunGreedy(problem);
  ASSERT_TRUE(full.ok());
  problem.candidate_depth = 5;  // the paper's literal residual policy
  const auto truncated = core::RunGreedy(problem);
  ASSERT_TRUE(truncated.ok());
  EXPECT_TRUE(core::ValidatePartition(problem, *truncated).ok());
  // Truncation can only under-report the residual group's list quality.
  EXPECT_LE(truncated->objective, full->objective + 1e-9);
  // Selected buckets are identical either way; only the residual differs.
  EXPECT_EQ(full->num_groups(), truncated->num_groups());
}

TEST(GreedyEdgeCases, AlgorithmNamesFollowPaperNomenclature) {
  const auto matrix = data::PaperExample1();
  auto problem = Problem(matrix, Semantics::kLeastMisery, Aggregation::kMin,
                         2, 2);
  EXPECT_EQ(core::GreedyFormer::AlgorithmName(problem), "GRD-LM-MIN");
  problem.semantics = Semantics::kAggregateVoting;
  problem.aggregation = Aggregation::kSum;
  EXPECT_EQ(core::GreedyFormer::AlgorithmName(problem), "GRD-AV-SUM");
  problem.aggregation = Aggregation::kMax;
  EXPECT_EQ(core::GreedyFormer::AlgorithmName(problem), "GRD-AV-MAX");
}

}  // namespace
}  // namespace groupform
