// Overlapping-group expansion (§9 future work, implemented as a
// post-pass).
#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/overlap.h"
#include "data/paper_examples.h"
#include "data/synthetic.h"
#include "eval/weighted_objective.h"

namespace groupform {
namespace {

using core::FormationProblem;
using core::OverlapOptions;

FormationProblem Problem(const data::RatingMatrix& matrix, int k, int ell) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = grouprec::Semantics::kLeastMisery;
  problem.aggregation = grouprec::Aggregation::kMin;
  problem.k = k;
  problem.max_groups = ell;
  return problem;
}

TEST(Overlap, EveryUserKeepsTheirHomeGroupFirst) {
  const auto matrix = data::PaperExample1();
  const auto problem = Problem(matrix, 2, 3);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok());
  OverlapOptions options;
  options.min_ndcg = 0.0;  // everyone may join anything
  options.max_extra_memberships = 2;
  const auto overlap = core::ExpandWithOverlaps(problem, *result, options);
  ASSERT_TRUE(overlap.ok()) << overlap.status();
  ASSERT_EQ(overlap->memberships.size(), 6u);
  for (UserId u = 0; u < 6; ++u) {
    const auto& groups = overlap->memberships[static_cast<std::size_t>(u)];
    ASSERT_FALSE(groups.empty());
    // The home group (first entry) actually contains the user.
    const auto& home =
        result->groups[static_cast<std::size_t>(groups.front())];
    EXPECT_NE(std::find(home.members.begin(), home.members.end(), u),
              home.members.end());
    EXPECT_LE(groups.size(), 3u);  // home + at most 2 extras
  }
  EXPECT_GE(overlap->mean_memberships, 1.0);
}

TEST(Overlap, ZeroExtrasIsTheDisjointPartition) {
  const auto matrix = data::PaperExample1();
  const auto problem = Problem(matrix, 2, 3);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok());
  OverlapOptions options;
  options.max_extra_memberships = 0;
  const auto overlap = core::ExpandWithOverlaps(problem, *result, options);
  ASSERT_TRUE(overlap.ok());
  EXPECT_DOUBLE_EQ(overlap->mean_memberships, 1.0);
  EXPECT_EQ(overlap->users_improved, 0);
  EXPECT_NEAR(overlap->mean_best_ndcg,
              eval::MeanUserNdcg(problem, *result), 1e-9);
}

TEST(Overlap, ExtrasNeverDecreaseBestNdcg) {
  const auto matrix = data::GenerateClusteredDense(80, 30, 8, 71);
  const auto problem = Problem(matrix, 4, 6);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok());
  OverlapOptions none;
  none.max_extra_memberships = 0;
  OverlapOptions some;
  some.max_extra_memberships = 2;
  some.min_ndcg = 0.3;
  const auto base = core::ExpandWithOverlaps(problem, *result, none);
  const auto expanded = core::ExpandWithOverlaps(problem, *result, some);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(expanded.ok());
  EXPECT_GE(expanded->mean_best_ndcg, base->mean_best_ndcg - 1e-9);
  EXPECT_GE(expanded->mean_memberships, base->mean_memberships);
}

TEST(Overlap, ThresholdGatesJoining) {
  const auto matrix = data::GenerateClusteredDense(60, 20, 6, 73);
  const auto problem = Problem(matrix, 3, 6);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok());
  OverlapOptions strict;
  strict.min_ndcg = 1.0;  // only perfect lists qualify
  strict.max_extra_memberships = 3;
  OverlapOptions loose;
  loose.min_ndcg = 0.0;
  loose.max_extra_memberships = 3;
  const auto a = core::ExpandWithOverlaps(problem, *result, strict);
  const auto b = core::ExpandWithOverlaps(problem, *result, loose);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(a->mean_memberships, b->mean_memberships);
}

TEST(Overlap, RejectsInvalidInputs) {
  const auto matrix = data::PaperExample1();
  const auto problem = Problem(matrix, 2, 3);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok());
  OverlapOptions bad;
  bad.max_extra_memberships = -1;
  EXPECT_FALSE(core::ExpandWithOverlaps(problem, *result, bad).ok());
  bad.max_extra_memberships = 1;
  bad.min_ndcg = 1.5;
  EXPECT_FALSE(core::ExpandWithOverlaps(problem, *result, bad).ok());

  // A corrupted partition is rejected too.
  auto broken = *result;
  broken.groups[0].members.push_back(broken.groups[1].members[0]);
  EXPECT_FALSE(
      core::ExpandWithOverlaps(problem, broken, OverlapOptions()).ok());
}

}  // namespace
}  // namespace groupform
