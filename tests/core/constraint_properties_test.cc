// Property harness for the constrained solver family (DESIGN.md §17):
// every constrained registry solver runs on 24 randomized sparse
// instances (GenerateScaleSparse, varying population, semantics, and
// spec). The contract under test — a constrained solver either returns
// a partition that satisfies its spec, with an honest objective and an
// honest floor_violations count, or fails INVALID_ARGUMENT; never a
// silently-violating OK. Each accepted solution is additionally bounded
// from above by unconstrained local search warm-started from the
// constrained partition: the climber starts at or above the constrained
// solution and only improves, so its converged objective dominates it
// (plain "<= greedy" would be unsound — LM splits can beat the greedy
// partition).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/constrained.h"
#include "core/formation.h"
#include "core/solver.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "grouprec/semantics.h"
#include "solvers/builtin.h"

namespace groupform {
namespace {

using core::ConstraintSpec;
using core::FormationProblem;
using core::FormationResult;
using grouprec::Aggregation;
using grouprec::Semantics;

constexpr int kInstances = 24;
constexpr int kMaxGroups = 6;

data::RatingMatrix Matrix(int index) {
  data::ScaleConfig config;
  config.num_users = 30 + 10 * (index % 5);
  config.num_items = 40;
  config.min_ratings_per_user = 8;
  config.max_ratings_per_user = 20;
  config.seed = 9000 + static_cast<std::uint64_t>(index);
  return data::GenerateScaleSparse(config);
}

FormationProblem Problem(const data::RatingMatrix& matrix, int index) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = (index % 2 == 0) ? Semantics::kLeastMisery
                                       : Semantics::kAggregateVoting;
  problem.aggregation = Aggregation::kMin;
  problem.k = 3;
  problem.max_groups = kMaxGroups;
  return problem;
}

/// A spec the solver under test supports, varied by instance index:
/// size bounds always (occasionally unbounded capacity), link pairs for
/// the link-aware solvers (must-link atoms at the id head, cannot-link
/// at the tail, so the two never collide), a floor for fairgreedy on
/// even instances. Capacities are near ceil(n / ell) so the repair path
/// actually runs; some index combinations are still infeasible, which
/// is part of the property (they must reject, not violate).
ConstraintSpec SpecFor(const std::string& solver, int index, int n) {
  ConstraintSpec spec;
  spec.min_group_size = 1 + index % 2;
  if (index % 4 != 0) {
    spec.max_group_size = (n + kMaxGroups - 1) / kMaxGroups + index % 5;
  }
  if (solver != core::CapGreedySolver::kRegistryName) {
    for (int p = 0; p <= index % 3; ++p) {
      spec.must_link.push_back({2 * p, 2 * p + 1});
    }
    if (index % 2 == 1) spec.cannot_link.push_back({n - 1, n - 2});
    if (index % 3 == 2) spec.cannot_link.push_back({n - 3, n - 4});
  }
  if (solver == core::FairGreedySolver::kRegistryName && index % 2 == 0) {
    spec.has_min_user_sat = true;
    spec.min_user_sat = 1.5 + 0.5 * (index % 4);
  }
  return spec;
}

void ExpectMessageContains(const common::Status& status,
                           const std::string& needle) {
  EXPECT_NE(status.message().find(needle), std::string::npos)
      << "status message \"" << status.message()
      << "\" does not mention \"" << needle << "\"";
}

/// The harness body: never-silently-violating, honest objective, honest
/// floor count, and the warm-started-local-search dominance bound.
void RunHarness(const std::string& solver) {
  solvers::EnsureBuiltinSolversRegistered();
  int accepted = 0;
  for (int index = 0; index < kInstances; ++index) {
    SCOPED_TRACE(solver + " instance " + std::to_string(index));
    const auto matrix = Matrix(index);
    auto problem = Problem(matrix, index);
    problem.constraints =
        SpecFor(solver, index, static_cast<int>(matrix.num_users()));
    ASSERT_TRUE(problem.Validate().ok()) << problem.Validate();

    const auto outcome = eval::RunAlgorithmByName(solver, problem, /*seed=*/99);
    if (!outcome.ok()) {
      // Rejection is allowed, but only as INVALID_ARGUMENT (infeasible
      // spec), never as a crash code or a silent mangling.
      EXPECT_EQ(outcome.status().code(),
                common::StatusCode::kInvalidArgument)
          << outcome.status();
      continue;
    }
    ++accepted;
    const FormationResult& result = outcome->result;

    int floor_violations = 0;
    const auto check = core::CheckPartition(problem, problem.constraints,
                                            result, &floor_violations);
    EXPECT_TRUE(check.ok()) << check;
    EXPECT_EQ(floor_violations, result.floor_violations);

    // Honest self-reporting: the claimed objective is the recomputed
    // objective of the returned partition (candidate_depth == 0, so the
    // recomputation scans the same full catalogue the solver did).
    EXPECT_NEAR(core::RecomputeObjective(problem, result), result.objective,
                1e-9);

    // Dominance bound: unconstrained local search warm-started from the
    // constrained partition starts at (or above) it and only climbs.
    std::vector<std::vector<UserId>> partition;
    partition.reserve(result.groups.size());
    for (const auto& group : result.groups) {
      partition.push_back(group.members);
    }
    core::SolverOptions warm;
    warm.SetStartAssignment(partition);
    warm.Set("use_swaps", "0");
    const auto bound =
        eval::RunAlgorithmByName("localsearch", problem, /*seed=*/99, warm);
    ASSERT_TRUE(bound.ok()) << bound.status();
    EXPECT_LE(result.objective, bound->result.objective + 1e-9);
  }
  // The harness must mostly exercise satisfied specs — a wall of
  // rejections would pin nothing about the repair pipeline.
  EXPECT_GE(accepted, kInstances / 2) << solver;
}

TEST(ConstraintProperties, CapGreedySatisfiesSpecOrRejects) {
  RunHarness(core::CapGreedySolver::kRegistryName);
}

TEST(ConstraintProperties, PairGreedySatisfiesSpecOrRejects) {
  RunHarness(core::PairGreedySolver::kRegistryName);
}

TEST(ConstraintProperties, FairGreedySatisfiesSpecOrRejects) {
  RunHarness(core::FairGreedySolver::kRegistryName);
}

// --- Per-solver unsupported spec parts: INVALID_ARGUMENT that names the
// solver to reach for, never a silent drop of the constraint. ---

TEST(ConstraintProperties, CapGreedyRejectsUnsupportedSpecParts) {
  solvers::EnsureBuiltinSolversRegistered();
  const auto matrix = Matrix(0);
  auto problem = Problem(matrix, 0);
  problem.constraints.must_link.push_back({0, 1});
  auto outcome = eval::RunAlgorithmByName("capgreedy", problem);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), common::StatusCode::kInvalidArgument);
  ExpectMessageContains(outcome.status(), "capgreedy supports size bounds only");

  problem.constraints = ConstraintSpec();
  problem.constraints.has_min_user_sat = true;
  problem.constraints.min_user_sat = 2.0;
  outcome = eval::RunAlgorithmByName("capgreedy", problem);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(ConstraintProperties, PairGreedyRejectsFairnessFloor) {
  solvers::EnsureBuiltinSolversRegistered();
  const auto matrix = Matrix(1);
  auto problem = Problem(matrix, 1);
  problem.constraints.has_min_user_sat = true;
  problem.constraints.min_user_sat = 2.0;
  const auto outcome = eval::RunAlgorithmByName("pairgreedy", problem);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), common::StatusCode::kInvalidArgument);
  ExpectMessageContains(outcome.status(), "pairgreedy does not support min_user_sat");
}

TEST(ConstraintProperties, ContradictoryLinksRejected) {
  // must_link fuses {0,1,2} transitively; cannot_link(0,2) contradicts.
  solvers::EnsureBuiltinSolversRegistered();
  const auto matrix = Matrix(2);
  for (const char* solver : {"pairgreedy", "fairgreedy"}) {
    auto problem = Problem(matrix, 2);
    problem.constraints.must_link = {{0, 1}, {1, 2}};
    problem.constraints.cannot_link = {{0, 2}};
    const auto outcome = eval::RunAlgorithmByName(solver, problem);
    ASSERT_FALSE(outcome.ok()) << solver;
    EXPECT_EQ(outcome.status().code(),
              common::StatusCode::kInvalidArgument)
        << solver;
    ExpectMessageContains(outcome.status(), "inseparable");
  }
}

TEST(ConstraintProperties, OversizedMustLinkAtomRejected) {
  // Small population so the capacity itself is feasible (15 <= 6 * 3)
  // and the fused atom is the one thing that cannot fit.
  solvers::EnsureBuiltinSolversRegistered();
  data::ScaleConfig config;
  config.num_users = 15;
  config.num_items = 40;
  config.seed = 9003;
  const auto matrix = data::GenerateScaleSparse(config);
  auto problem = Problem(matrix, 3);
  problem.constraints.max_group_size = 3;
  problem.constraints.must_link = {{0, 1}, {1, 2}, {2, 3}};  // atom of 4
  const auto outcome = eval::RunAlgorithmByName("pairgreedy", problem);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), common::StatusCode::kInvalidArgument);
  ExpectMessageContains(outcome.status(), "above max_group_size=3");
}

TEST(ConstraintProperties, InfeasibleCapacityNamesTheNumbers) {
  // 70 users cannot fit 6 groups of <= 5: the rejection must carry the
  // bound and the offending numbers, not a bare "infeasible".
  solvers::EnsureBuiltinSolversRegistered();
  data::ScaleConfig config;
  config.num_users = 70;
  config.num_items = 40;
  config.seed = 9100;
  const auto matrix = data::GenerateScaleSparse(config);
  auto problem = Problem(matrix, 0);
  problem.constraints.max_group_size = 5;
  for (const char* solver : {"capgreedy", "pairgreedy", "fairgreedy"}) {
    const auto outcome = eval::RunAlgorithmByName(solver, problem);
    ASSERT_FALSE(outcome.ok()) << solver;
    EXPECT_EQ(outcome.status().code(),
              common::StatusCode::kInvalidArgument)
        << solver;
    ExpectMessageContains(outcome.status(), "5");
    ExpectMessageContains(outcome.status(), "70");
  }
}

}  // namespace
}  // namespace groupform
