// RunDistributedGreedy with honest hooks is GreedyFormer::Run(), bit for
// bit: every semantics x aggregation pair, several shard counts, residual
// scans local and sharded. This is the property the fleet broker's
// scatter/gather mode stands on — the hooks here compute locally exactly
// what a worker answers over the wire (and wire doubles round-trip
// bit-exactly), so equality here plus wire-identity there gives
// end-to-end byte-identical fleet responses.
#include "core/distributed_greedy.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/formation.h"
#include "core/greedy.h"
#include "data/synthetic.h"
#include "grouprec/semantics.h"
#include "recsys/preference_lists.h"

namespace groupform::core {
namespace {

using grouprec::Aggregation;
using grouprec::Semantics;

void ExpectBitwiseEqual(const FormationResult& got,
                        const FormationResult& want) {
  EXPECT_EQ(got.algorithm, want.algorithm);
  EXPECT_EQ(got.objective, want.objective);  // exact, not near
  ASSERT_EQ(got.groups.size(), want.groups.size());
  for (std::size_t g = 0; g < want.groups.size(); ++g) {
    EXPECT_EQ(got.groups[g].members, want.groups[g].members) << "group " << g;
    EXPECT_EQ(got.groups[g].satisfaction, want.groups[g].satisfaction)
        << "group " << g;
    ASSERT_EQ(got.groups[g].recommendation.items.size(),
              want.groups[g].recommendation.items.size())
        << "group " << g;
    for (int i = 0; i < want.groups[g].recommendation.size(); ++i) {
      EXPECT_EQ(got.groups[g].recommendation.items[i],
                want.groups[g].recommendation.items[i])
          << "group " << g << " item " << i;
    }
  }
}

/// Hooks that answer from the problem's own store — the local stand-in
/// for a worker fleet serving the same instance.
DistributedGreedyHooks LocalHooks(const FormationProblem& problem,
                                  int user_shards,
                                  std::int64_t residual_shard_items) {
  DistributedGreedyHooks hooks;
  hooks.user_shards = user_shards;
  hooks.residual_shard_items = residual_shard_items;
  hooks.user_topk = [&problem](UserId begin, UserId end)
      -> common::StatusOr<std::vector<std::vector<data::RatingEntry>>> {
    const data::RatingStore store = problem.Store();
    std::vector<std::vector<data::RatingEntry>> lists;
    lists.reserve(static_cast<std::size_t>(end - begin));
    for (UserId u = begin; u < end; ++u) {
      lists.push_back(recsys::TopKList(store, u, problem.k));
    }
    return lists;
  };
  if (residual_shard_items > 0) {
    hooks.group_topk_range =
        [&problem](std::span<const UserId> members, ItemId begin,
                   ItemId end) -> common::StatusOr<grouprec::GroupTopK> {
      return problem.MakeScorer().TopKItemRange(members, problem.k, begin,
                                                end);
    };
  }
  return hooks;
}

TEST(DistributedGreedyTest, MatchesGreedyFormerBitwiseEverywhere) {
  data::SyntheticConfig config;
  config.num_users = 120;
  config.num_items = 40;
  config.num_taste_clusters = 6;
  config.seed = 7;
  const data::RatingMatrix matrix = data::GenerateLatentFactor(config);

  for (const Semantics semantics :
       {Semantics::kLeastMisery, Semantics::kAggregateVoting}) {
    for (const Aggregation aggregation :
         {Aggregation::kMax, Aggregation::kMin, Aggregation::kSum}) {
      FormationProblem problem;
      problem.matrix = &matrix;
      problem.semantics = semantics;
      problem.aggregation = aggregation;
      problem.k = 3;
      problem.max_groups = 8;
      const auto want = GreedyFormer(problem).Run();
      ASSERT_TRUE(want.ok()) << want.status();
      for (const int shards : {1, 3, 7}) {
        for (const std::int64_t residual_items : {0ll, 11ll}) {
          SCOPED_TRACE(testing::Message()
                       << "sem=" << static_cast<int>(semantics)
                       << " agg=" << static_cast<int>(aggregation)
                       << " shards=" << shards
                       << " residual_items=" << residual_items);
          const auto hooks = LocalHooks(problem, shards, residual_items);
          const auto got = RunDistributedGreedy(problem, hooks);
          ASSERT_TRUE(got.ok()) << got.status();
          ExpectBitwiseEqual(*got, *want);
        }
      }
    }
  }
}

TEST(DistributedGreedyTest, MoreShardsThanUsersStillExact) {
  data::SyntheticConfig config;
  config.num_users = 5;
  config.num_items = 12;
  config.seed = 3;
  const data::RatingMatrix matrix = data::GenerateLatentFactor(config);
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.k = 4;
  problem.max_groups = 3;
  const auto want = GreedyFormer(problem).Run();
  ASSERT_TRUE(want.ok()) << want.status();
  const auto hooks = LocalHooks(problem, 64, 5);
  const auto got = RunDistributedGreedy(problem, hooks);
  ASSERT_TRUE(got.ok()) << got.status();
  ExpectBitwiseEqual(*got, *want);
}

TEST(DistributedGreedyTest, UserTopkFailurePropagates) {
  data::SyntheticConfig config;
  config.num_users = 10;
  config.num_items = 8;
  const data::RatingMatrix matrix = data::GenerateLatentFactor(config);
  FormationProblem problem;
  problem.matrix = &matrix;
  DistributedGreedyHooks hooks;
  hooks.user_shards = 2;
  hooks.user_topk = [](UserId, UserId)
      -> common::StatusOr<std::vector<std::vector<data::RatingEntry>>> {
    return common::Status::Unavailable("worker down");
  };
  const auto got = RunDistributedGreedy(problem, hooks);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), common::StatusCode::kUnavailable);
}

TEST(DistributedGreedyTest, ResidualFailureFallsBackLocally) {
  data::SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 30;
  config.num_taste_clusters = 3;
  const data::RatingMatrix matrix = data::GenerateLatentFactor(config);
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.k = 3;
  problem.max_groups = 4;  // few groups → a residual group forms
  const auto want = GreedyFormer(problem).Run();
  ASSERT_TRUE(want.ok()) << want.status();
  auto hooks = LocalHooks(problem, 3, 7);
  hooks.group_topk_range =
      [](std::span<const UserId>, ItemId,
         ItemId) -> common::StatusOr<grouprec::GroupTopK> {
    return common::Status::Unavailable("worker down");
  };
  const auto got = RunDistributedGreedy(problem, hooks);
  ASSERT_TRUE(got.ok()) << got.status();
  ExpectBitwiseEqual(*got, *want);
}

}  // namespace
}  // namespace groupform::core
