// IncrementalFormer: equivalence with the one-shot greedy, add/remove
// round trips, and error handling.
#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/incremental.h"
#include "data/paper_examples.h"
#include "data/synthetic.h"
#include "grouprec/semantics.h"

namespace groupform {
namespace {

using core::FormationProblem;
using core::IncrementalFormer;
using grouprec::Aggregation;
using grouprec::Semantics;

FormationProblem Problem(const data::RatingMatrix& matrix,
                         Semantics semantics, Aggregation aggregation, int k,
                         int ell) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = semantics;
  problem.aggregation = aggregation;
  problem.k = k;
  problem.max_groups = ell;
  return problem;
}

void ExpectSameGroups(const core::FormationResult& a,
                      const core::FormationResult& b) {
  ASSERT_EQ(a.num_groups(), b.num_groups());
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
  for (int g = 0; g < a.num_groups(); ++g) {
    EXPECT_EQ(a.groups[static_cast<std::size_t>(g)].members,
              b.groups[static_cast<std::size_t>(g)].members);
  }
}

TEST(IncrementalFormer, FullPopulationMatchesGreedyExactly) {
  const auto matrix = data::GenerateLatentFactor(
      data::YahooMusicLikeConfig(250, 60, 404));
  for (const auto semantics :
       {Semantics::kLeastMisery, Semantics::kAggregateVoting}) {
    for (const auto aggregation :
         {Aggregation::kMax, Aggregation::kMin, Aggregation::kSum}) {
      const auto problem = Problem(matrix, semantics, aggregation, 4, 8);
      IncrementalFormer former(problem);
      former.AddAllUsers();
      const auto incremental = former.Form();
      const auto greedy = core::RunGreedy(problem);
      ASSERT_TRUE(incremental.ok()) << incremental.status();
      ASSERT_TRUE(greedy.ok());
      ExpectSameGroups(*incremental, *greedy);
    }
  }
}

TEST(IncrementalFormer, InsertionOrderDoesNotMatter) {
  const auto matrix = data::PaperExample1();
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kMin, 1, 3);
  IncrementalFormer forward(problem);
  for (UserId u = 0; u < 6; ++u) ASSERT_TRUE(forward.AddUser(u).ok());
  IncrementalFormer backward(problem);
  for (UserId u = 5; u >= 0; --u) ASSERT_TRUE(backward.AddUser(u).ok());
  const auto a = forward.Form();
  const auto b = backward.Form();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameGroups(*a, *b);
}

TEST(IncrementalFormer, RemoveThenReaddRestoresTheResult) {
  const auto matrix = data::GenerateLatentFactor(
      data::YahooMusicLikeConfig(120, 40, 405));
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kMin, 3, 6);
  IncrementalFormer former(problem);
  former.AddAllUsers();
  const auto before = former.Form();
  ASSERT_TRUE(before.ok());
  for (UserId u : {3, 17, 64, 99}) {
    ASSERT_TRUE(former.RemoveUser(u).ok());
  }
  EXPECT_EQ(former.num_active(), 116);
  for (UserId u : {99, 3, 64, 17}) {
    ASSERT_TRUE(former.AddUser(u).ok());
  }
  const auto after = former.Form();
  ASSERT_TRUE(after.ok());
  ExpectSameGroups(*before, *after);
}

TEST(IncrementalFormer, SubsetFormationMatchesGreedyOnSubsetMatrix) {
  const auto matrix = data::GenerateLatentFactor(
      data::YahooMusicLikeConfig(100, 30, 406));
  const auto problem =
      Problem(matrix, Semantics::kAggregateVoting, Aggregation::kMin, 3, 5);
  // Activate an ascending subset; the subset matrix preserves relative
  // user order, so the bucket structure (hence the objective) must match.
  std::vector<UserId> active;
  for (UserId u = 0; u < 100; u += 3) active.push_back(u);
  IncrementalFormer former(problem);
  for (UserId u : active) ASSERT_TRUE(former.AddUser(u).ok());
  const auto incremental = former.Form();
  ASSERT_TRUE(incremental.ok());

  const auto subset = matrix.SubsetUsers(active);
  ASSERT_TRUE(subset.ok());
  const auto subset_problem = Problem(*subset, Semantics::kAggregateVoting,
                                      Aggregation::kMin, 3, 5);
  const auto greedy = core::RunGreedy(subset_problem);
  ASSERT_TRUE(greedy.ok());
  EXPECT_NEAR(incremental->objective, greedy->objective, 1e-9);
  EXPECT_EQ(incremental->num_groups(), greedy->num_groups());
}

TEST(IncrementalFormer, LifecycleErrors) {
  const auto matrix = data::PaperExample1();
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kMin, 1, 3);
  IncrementalFormer former(problem);
  EXPECT_FALSE(former.Form().ok());  // empty population
  EXPECT_FALSE(former.AddUser(-1).ok());
  EXPECT_FALSE(former.AddUser(6).ok());
  ASSERT_TRUE(former.AddUser(0).ok());
  EXPECT_FALSE(former.AddUser(0).ok());     // duplicate add
  EXPECT_FALSE(former.RemoveUser(1).ok());  // not active
  ASSERT_TRUE(former.RemoveUser(0).ok());
  EXPECT_EQ(former.num_active(), 0);
}

TEST(IncrementalFormer, ChurnKeepsBucketsConsistent) {
  // Heavy add/remove churn, then compare against a fresh run.
  const auto matrix = data::GenerateLatentFactor(
      data::YahooMusicLikeConfig(150, 40, 407));
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kSum, 3, 7);
  IncrementalFormer churned(problem);
  churned.AddAllUsers();
  for (int round = 0; round < 5; ++round) {
    for (UserId u = static_cast<UserId>(round); u < 150; u += 7) {
      ASSERT_TRUE(churned.RemoveUser(u).ok());
    }
    for (UserId u = static_cast<UserId>(round); u < 150; u += 7) {
      ASSERT_TRUE(churned.AddUser(u).ok());
    }
  }
  IncrementalFormer fresh(problem);
  fresh.AddAllUsers();
  const auto a = churned.Form();
  const auto b = fresh.Form();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameGroups(*a, *b);
}

}  // namespace
}  // namespace groupform
