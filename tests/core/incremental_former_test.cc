// IncrementalFormer round-trip property (the doc-comment contract in
// core/incremental.h that `groupform.delta/1`'s greedy fast path leans
// on): RemoveUser→AddUser sequences land bitwise on the never-removed
// state, and Form() after any add/remove history equals a fresh greedy
// run over the surviving population.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/greedy.h"
#include "core/incremental.h"
#include "data/synthetic.h"
#include "grouprec/semantics.h"

namespace groupform {
namespace {

using core::FormationProblem;
using core::FormationResult;
using core::IncrementalFormer;
using grouprec::Aggregation;
using grouprec::Semantics;

FormationProblem Problem(const data::RatingMatrix& matrix,
                         Semantics semantics, Aggregation aggregation) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = semantics;
  problem.aggregation = aggregation;
  problem.k = 4;
  problem.max_groups = 8;
  return problem;
}

/// Bitwise comparison: member lists equal, objective equal as doubles
/// (EXPECT_EQ, not EXPECT_NEAR — the round-trip contract is exact).
void ExpectBitwiseEqual(const FormationResult& a, const FormationResult& b) {
  EXPECT_EQ(a.objective, b.objective);
  ASSERT_EQ(a.num_groups(), b.num_groups());
  for (int g = 0; g < a.num_groups(); ++g) {
    EXPECT_EQ(a.groups[static_cast<std::size_t>(g)].members,
              b.groups[static_cast<std::size_t>(g)].members);
  }
}

TEST(IncrementalFormerRoundTrip, RemoveThenAddLandsOnNeverRemovedState) {
  const auto matrix =
      data::GenerateLatentFactor(data::YahooMusicLikeConfig(120, 40, 9001));
  for (const auto semantics :
       {Semantics::kLeastMisery, Semantics::kAggregateVoting}) {
    for (const auto aggregation :
         {Aggregation::kMax, Aggregation::kMin, Aggregation::kSum}) {
      const auto problem = Problem(matrix, semantics, aggregation);
      IncrementalFormer reference(problem);
      reference.AddAllUsers();
      const auto untouched = reference.Form();
      ASSERT_TRUE(untouched.ok()) << untouched.status();

      IncrementalFormer former(problem);
      former.AddAllUsers();
      for (const UserId user : {3, 17, 42, 99}) {
        ASSERT_TRUE(former.RemoveUser(user).ok());
      }
      // Re-add in a different order than the removal.
      for (const UserId user : {99, 3, 42, 17}) {
        ASSERT_TRUE(former.AddUser(user).ok());
      }
      const auto round_tripped = former.Form();
      ASSERT_TRUE(round_tripped.ok()) << round_tripped.status();
      ExpectBitwiseEqual(*round_tripped, *untouched);
    }
  }
}

TEST(IncrementalFormerRoundTrip, RepeatedChurnStaysBitwise) {
  const auto matrix =
      data::GenerateLatentFactor(data::YahooMusicLikeConfig(90, 30, 7));
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kMin);
  IncrementalFormer reference(problem);
  reference.AddAllUsers();
  const auto untouched = reference.Form();
  ASSERT_TRUE(untouched.ok()) << untouched.status();

  IncrementalFormer former(problem);
  former.AddAllUsers();
  // Five rounds of churn over a rotating id set, each fully undone: the
  // former's internal buckets must not accumulate drift.
  for (int round = 0; round < 5; ++round) {
    std::vector<UserId> removed;
    for (int i = 0; i < 7; ++i) {
      removed.push_back(static_cast<UserId>((round * 13 + i * 11) % 90));
    }
    std::sort(removed.begin(), removed.end());
    removed.erase(std::unique(removed.begin(), removed.end()),
                  removed.end());
    for (const UserId user : removed) {
      ASSERT_TRUE(former.RemoveUser(user).ok());
    }
    for (auto it = removed.rbegin(); it != removed.rend(); ++it) {
      ASSERT_TRUE(former.AddUser(*it).ok());
    }
    const auto formed = former.Form();
    ASSERT_TRUE(formed.ok()) << formed.status();
    ExpectBitwiseEqual(*formed, *untouched);
  }
}

TEST(IncrementalFormerRoundTrip,
     SurvivorPopulationMatchesFreshFormerBitwise) {
  const auto matrix =
      data::GenerateLatentFactor(data::YahooMusicLikeConfig(80, 25, 123));
  const auto problem =
      Problem(matrix, Semantics::kAggregateVoting, Aggregation::kSum);
  // History: add everyone, churn some out, re-admit a few.
  IncrementalFormer churned(problem);
  churned.AddAllUsers();
  for (const UserId user : {2, 5, 8, 13, 21, 34, 55}) {
    ASSERT_TRUE(churned.RemoveUser(user).ok());
  }
  for (const UserId user : {8, 34}) {
    ASSERT_TRUE(churned.AddUser(user).ok());
  }
  // Fresh former that only ever saw the survivors.
  IncrementalFormer fresh(problem);
  for (UserId user = 0; user < 80; ++user) {
    if (user == 2 || user == 5 || user == 13 || user == 21 || user == 55) {
      continue;
    }
    ASSERT_TRUE(fresh.AddUser(user).ok());
  }
  ASSERT_EQ(churned.num_active(), fresh.num_active());
  const auto a = churned.Form();
  const auto b = fresh.Form();
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ExpectBitwiseEqual(*a, *b);
}

TEST(IncrementalFormerRoundTrip, FormMatchesGreedyAfterChurn) {
  const auto matrix =
      data::GenerateLatentFactor(data::YahooMusicLikeConfig(100, 30, 77));
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kSum);
  IncrementalFormer former(problem);
  former.AddAllUsers();
  for (const UserId user : {10, 20, 30}) {
    ASSERT_TRUE(former.RemoveUser(user).ok());
    ASSERT_TRUE(former.AddUser(user).ok());
  }
  const auto incremental = former.Form();
  const auto greedy = core::RunGreedy(problem);
  ASSERT_TRUE(incremental.ok()) << incremental.status();
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  ExpectBitwiseEqual(*incremental, *greedy);
}

}  // namespace
}  // namespace groupform
