// Golden tests reproducing every worked example of the paper (Tables 1, 2,
// 5 and the traces in §4, §5 and Appendix B). These pin both the objective
// values and the group compositions the paper reports.
#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/formation.h"
#include "core/greedy.h"
#include "data/paper_examples.h"
#include "exact/subset_dp.h"
#include "grouprec/semantics.h"

namespace groupform {
namespace {

using core::FormationProblem;
using core::FormationResult;
using grouprec::Aggregation;
using grouprec::Semantics;

// 0-indexed users: paper's u1 is user 0, etc.
using Group = std::set<UserId>;
using Grouping = std::set<Group>;

Grouping GroupingOf(const FormationResult& result) {
  Grouping grouping;
  for (const auto& g : result.groups) {
    grouping.insert(Group(g.members.begin(), g.members.end()));
  }
  return grouping;
}

FormationProblem MakeProblem(const data::RatingMatrix& matrix,
                             Semantics semantics, Aggregation aggregation,
                             int k, int ell) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = semantics;
  problem.aggregation = aggregation;
  problem.k = k;
  problem.max_groups = ell;
  return problem;
}

// ---------------------------------------------------------------------------
// Example 1 (Table 1), GRD-LM-MIN.
// ---------------------------------------------------------------------------

TEST(GoldenExample1, GrdLmMinK1FormsPaperGroupsWithObjective11) {
  const auto matrix = data::PaperExample1();
  const auto problem = MakeProblem(matrix, Semantics::kLeastMisery,
                                   Aggregation::kMin, /*k=*/1, /*ell=*/3);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result->objective, 11.0);
  // Paper: {u3,u4} (5), {u2,u6} (5), {u1,u5} (1).
  EXPECT_EQ(GroupingOf(*result),
            (Grouping{{2, 3}, {1, 5}, {0, 4}}));
  EXPECT_TRUE(core::ValidatePartition(problem, *result).ok());
}

TEST(GoldenExample1, GrdLmMinK1IsWithinRmaxOfOptimal12) {
  const auto matrix = data::PaperExample1();
  const auto problem = MakeProblem(matrix, Semantics::kLeastMisery,
                                   Aggregation::kMin, 1, 3);
  const auto opt = exact::SubsetDpSolver(problem).Run();
  ASSERT_TRUE(opt.ok()) << opt.status();
  // Paper: optimal grouping {u1,u3,u4}, {u2,u6}, {u5} with value 12.
  EXPECT_DOUBLE_EQ(opt->objective, 12.0);
  EXPECT_EQ(GroupingOf(*opt), (Grouping{{0, 2, 3}, {1, 5}, {4}}));
}

TEST(GoldenExample1, GrdLmMinK2FormsPaperGroupsWithObjective7) {
  const auto matrix = data::PaperExample1();
  const auto problem = MakeProblem(matrix, Semantics::kLeastMisery,
                                   Aggregation::kMin, 2, 3);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok()) << result.status();
  // Paper: {u1} (3), {u2} (3), {u3,u4,u5,u6} (1); Obj = 7.
  EXPECT_DOUBLE_EQ(result->objective, 7.0);
  EXPECT_EQ(GroupingOf(*result), (Grouping{{0}, {1}, {2, 3, 4, 5}}));
}

// ---------------------------------------------------------------------------
// Example 1, GRD-LM-SUM (§4.2).
// ---------------------------------------------------------------------------

TEST(GoldenExample1, GrdLmSumK2FormsPaperGroupsWithObjective17) {
  const auto matrix = data::PaperExample1();
  const auto problem = MakeProblem(matrix, Semantics::kLeastMisery,
                                   Aggregation::kSum, 2, 3);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok()) << result.status();
  // Paper: {u3,u4} (5+2), {u1,u5,u6} (1+1), {u2} (5+3); total 17.
  EXPECT_DOUBLE_EQ(result->objective, 17.0);
  EXPECT_EQ(GroupingOf(*result), (Grouping{{2, 3}, {0, 4, 5}, {1}}));
}

// ---------------------------------------------------------------------------
// Example 2 (Table 2), GRD-AV-MIN and GRD-AV-SUM (§5).
// ---------------------------------------------------------------------------

TEST(GoldenExample2, GrdAvMinK2FormsPaperGroupsWithObjective13) {
  const auto matrix = data::PaperExample2();
  const auto problem = MakeProblem(matrix, Semantics::kAggregateVoting,
                                   Aggregation::kMin, 2, 2);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok()) << result.status();
  // Paper: {u3,u4} on (i2,i1) with AV 4; {u1,u2,u5,u6} on (i3,i2) with
  // AV 9; objective 13.
  EXPECT_DOUBLE_EQ(result->objective, 13.0);
  EXPECT_EQ(GroupingOf(*result), (Grouping{{2, 3}, {0, 1, 4, 5}}));
  // The first group's recommended list is its shared sequence (i2, i1).
  const auto& first = result->groups[0];
  ASSERT_EQ(first.members, (std::vector<UserId>{2, 3}));
  ASSERT_EQ(first.recommendation.size(), 2);
  EXPECT_EQ(first.recommendation.items[0].item, 1);  // i2
  EXPECT_EQ(first.recommendation.items[1].item, 0);  // i1
}

TEST(GoldenExample2, PaperGroupingScores14ButTrueOptimumIs16) {
  const auto matrix = data::PaperExample2();
  const auto problem = MakeProblem(matrix, Semantics::kAggregateVoting,
                                   Aggregation::kMin, 2, 2);
  // The paper (Appendix A.2) reports {u1,u3,u4} / {u2,u5,u6} with value 14
  // as optimal. Its arithmetic for that grouping is correct...
  const grouprec::GroupScorer scorer = problem.MakeScorer();
  const std::vector<UserId> g1 = {0, 2, 3};
  const std::vector<UserId> g2 = {1, 4, 5};
  const double paper_value =
      grouprec::GroupScorer::AggregateSatisfaction(
          scorer.TopKAllItems(g1, 2), Aggregation::kMin) +
      grouprec::GroupScorer::AggregateSatisfaction(
          scorer.TopKAllItems(g2, 2), Aggregation::kMin);
  EXPECT_DOUBLE_EQ(paper_value, 14.0);
  // ...but the grouping is not optimal: {u1,u3,u4,u6} / {u2,u5} scores
  // 10 + 6 = 16 (verified against the brute-force enumerator in
  // exact_solvers_test). AV-Min rewards folding more voters into the
  // strong group — the same effect the paper itself illustrates with
  // Example 4.
  const auto opt = exact::SubsetDpSolver(problem).Run();
  ASSERT_TRUE(opt.ok()) << opt.status();
  EXPECT_DOUBLE_EQ(opt->objective, 16.0);
  EXPECT_EQ(GroupingOf(*opt), (Grouping{{0, 2, 3, 5}, {1, 4}}));
}

TEST(GoldenExample2, GrdAvSumK2ObjectiveIs34) {
  const auto matrix = data::PaperExample2();
  const auto problem = MakeProblem(matrix, Semantics::kAggregateVoting,
                                   Aggregation::kSum, 2, 2);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok()) << result.status();
  // Paper: same groups as GRD-AV-MIN, objective 14 + 20 = 34.
  EXPECT_DOUBLE_EQ(result->objective, 34.0);
  EXPECT_EQ(GroupingOf(*result), (Grouping{{2, 3}, {0, 1, 4, 5}}));
}

// ---------------------------------------------------------------------------
// Example 3 (§4.1): the group's bottom item differs from every member's
// personal bottom item under LM with k = 2.
// ---------------------------------------------------------------------------

TEST(GoldenExample3, GroupTopTwoLeadsWithItem2AndBottomScore1) {
  const auto matrix = data::PaperExample3();
  grouprec::GroupScorer::Options options;
  options.semantics = Semantics::kLeastMisery;
  const grouprec::GroupScorer scorer(matrix, options);
  const std::vector<UserId> group = {0, 1};
  const auto list = scorer.TopKAllItems(group, 2);
  ASSERT_EQ(list.size(), 2);
  // i2 (index 1) has LM score 4 and leads; every other item has LM 1.
  EXPECT_EQ(list.items[0].item, 1);
  EXPECT_DOUBLE_EQ(list.items[0].score, 4.0);
  EXPECT_DOUBLE_EQ(list.items[1].score, 1.0);
}

// ---------------------------------------------------------------------------
// Example 4 (§5.1): AV can beat the shared-top-k grouping.
// ---------------------------------------------------------------------------

TEST(GoldenExample4, GreedyGets14PaperGrouping15TrueOptimum16) {
  const auto matrix = data::PaperExample4();
  const auto problem = MakeProblem(matrix, Semantics::kAggregateVoting,
                                   Aggregation::kMin, 2, 2);
  const auto grd = core::RunGreedy(problem);
  ASSERT_TRUE(grd.ok()) << grd.status();
  // Shared-top-2 grouping: {u1,u4} (4+2=6) and {u2,u3} (4+4=8).
  EXPECT_DOUBLE_EQ(grd->objective, 14.0);
  EXPECT_EQ(GroupingOf(*grd), (Grouping{{0, 3}, {1, 2}}));

  // The paper's improved grouping {u1,u2,u3} / {u4} scores 13 + 2 = 15...
  const grouprec::GroupScorer scorer = problem.MakeScorer();
  const std::vector<UserId> strong = {0, 1, 2};
  const std::vector<UserId> alone = {3};
  EXPECT_DOUBLE_EQ(grouprec::GroupScorer::AggregateSatisfaction(
                       scorer.TopKAllItems(strong, 2), Aggregation::kMin) +
                       grouprec::GroupScorer::AggregateSatisfaction(
                           scorer.TopKAllItems(alone, 2),
                           Aggregation::kMin),
                   15.0);
  // ...and taking AV's big-group logic to its conclusion, one group of all
  // four users scores min(16, 16) = 16: the true optimum (cross-checked
  // with brute force). The paper stopped one merge short of its own point.
  const auto opt = exact::SubsetDpSolver(problem).Run();
  ASSERT_TRUE(opt.ok()) << opt.status();
  EXPECT_DOUBLE_EQ(opt->objective, 16.0);
  EXPECT_EQ(GroupingOf(*opt), (Grouping{{0, 1, 2, 3}}));
}

// ---------------------------------------------------------------------------
// Example 5 (Table 5, Appendix B): GRD-LM-SUM suboptimality witness.
// ---------------------------------------------------------------------------

TEST(GoldenExample5, GrdLmSumGets20OptimalGets21) {
  const auto matrix = data::PaperExample5();
  const auto problem = MakeProblem(matrix, Semantics::kLeastMisery,
                                   Aggregation::kSum, 2, 3);
  const auto grd = core::RunGreedy(problem);
  ASSERT_TRUE(grd.ok()) << grd.status();
  // Paper: {u2} (5+3), {u3,u4} (5+2), {u1,u5,u6} (3+2); total 20.
  EXPECT_DOUBLE_EQ(grd->objective, 20.0);
  EXPECT_EQ(GroupingOf(*grd), (Grouping{{1}, {2, 3}, {0, 4, 5}}));

  const auto opt = exact::SubsetDpSolver(problem).Run();
  ASSERT_TRUE(opt.ok()) << opt.status();
  // Paper: {u2,u6}, {u3,u4}, {u1,u5} with value 21.
  EXPECT_DOUBLE_EQ(opt->objective, 21.0);
  EXPECT_EQ(GroupingOf(*opt), (Grouping{{1, 5}, {2, 3}, {0, 4}}));
  // Theorem 3: absolute error bounded by k * r_max.
  EXPECT_LE(opt->objective - grd->objective, 2 * 5.0);
}

// ---------------------------------------------------------------------------
// Cross-checks shared by all examples.
// ---------------------------------------------------------------------------

TEST(GoldenExamples, ReportedObjectivesMatchIndependentRecomputation) {
  const auto matrix1 = data::PaperExample1();
  const auto matrix2 = data::PaperExample2();
  const struct {
    const data::RatingMatrix* matrix;
    Semantics semantics;
    Aggregation aggregation;
    int k;
    int ell;
  } cases[] = {
      {&matrix1, Semantics::kLeastMisery, Aggregation::kMin, 1, 3},
      {&matrix1, Semantics::kLeastMisery, Aggregation::kMin, 2, 3},
      {&matrix1, Semantics::kLeastMisery, Aggregation::kSum, 2, 3},
      {&matrix2, Semantics::kAggregateVoting, Aggregation::kMin, 2, 2},
      {&matrix2, Semantics::kAggregateVoting, Aggregation::kSum, 2, 2},
  };
  for (const auto& c : cases) {
    const auto problem =
        MakeProblem(*c.matrix, c.semantics, c.aggregation, c.k, c.ell);
    const auto result = core::RunGreedy(problem);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_NEAR(core::RecomputeObjective(problem, *result),
                result->objective, 1e-9)
        << problem.ToString();
  }
}

}  // namespace
}  // namespace groupform
