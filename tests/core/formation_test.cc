// FormationProblem / FormationResult plumbing: validation, helpers, and
// the partition checker itself.
#include <gtest/gtest.h>

#include "core/formation.h"
#include "data/paper_examples.h"

namespace groupform {
namespace {

using core::FormationProblem;
using core::FormationResult;
using core::FormedGroup;
using grouprec::Aggregation;
using grouprec::Semantics;

FormationProblem ValidProblem(const data::RatingMatrix& matrix) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.k = 2;
  problem.max_groups = 3;
  return problem;
}

TEST(FormationProblem, ValidateCatchesEachBadField) {
  const auto matrix = data::PaperExample1();
  EXPECT_TRUE(ValidProblem(matrix).Validate().ok());

  auto p1 = ValidProblem(matrix);
  p1.matrix = nullptr;
  EXPECT_EQ(p1.Validate().code(), common::StatusCode::kInvalidArgument);

  auto p2 = ValidProblem(matrix);
  p2.k = 0;
  EXPECT_FALSE(p2.Validate().ok());

  auto p3 = ValidProblem(matrix);
  p3.max_groups = -1;
  EXPECT_FALSE(p3.Validate().ok());

  auto p4 = ValidProblem(matrix);
  p4.candidate_depth = -2;
  EXPECT_FALSE(p4.Validate().ok());
}

TEST(FormationProblem, ToStringNamesSemanticsAndShape) {
  const auto matrix = data::PaperExample1();
  auto problem = ValidProblem(matrix);
  problem.semantics = Semantics::kAggregateVoting;
  problem.aggregation = Aggregation::kSum;
  EXPECT_EQ(problem.ToString(), "AV/SUM k=2 ell=3 n=6 m=3");
}

FormationResult ManualResult() {
  FormationResult result;
  FormedGroup g1;
  g1.members = {0, 1, 2};
  g1.satisfaction = 4.0;
  FormedGroup g2;
  g2.members = {3, 4, 5};
  g2.satisfaction = 2.0;
  result.groups = {g1, g2};
  result.objective = 6.0;
  return result;
}

TEST(ValidatePartition, AcceptsAWellFormedPartition) {
  const auto matrix = data::PaperExample1();
  const auto problem = ValidProblem(matrix);
  EXPECT_TRUE(core::ValidatePartition(problem, ManualResult()).ok());
}

TEST(ValidatePartition, RejectsOverlapMissingUsersAndBadObjective) {
  const auto matrix = data::PaperExample1();
  const auto problem = ValidProblem(matrix);

  auto overlap = ManualResult();
  overlap.groups[1].members = {2, 4, 5};  // user 2 twice, user 3 missing
  EXPECT_FALSE(core::ValidatePartition(problem, overlap).ok());

  auto missing = ManualResult();
  missing.groups[1].members = {3, 4};  // user 5 uncovered
  EXPECT_FALSE(core::ValidatePartition(problem, missing).ok());

  auto bad_objective = ManualResult();
  bad_objective.objective = 99.0;
  EXPECT_FALSE(core::ValidatePartition(problem, bad_objective).ok());

  auto too_many = ManualResult();
  too_many.groups = {FormedGroup{{0}, {}, 1.0}, FormedGroup{{1}, {}, 1.0},
                     FormedGroup{{2}, {}, 1.0}, FormedGroup{{3}, {}, 1.0}};
  // 4 groups but max_groups = 3 (also uncovered users, but the group-count
  // check fires first conceptually; either failure is acceptable).
  EXPECT_FALSE(core::ValidatePartition(problem, too_many).ok());

  auto empty_group = ManualResult();
  empty_group.groups.push_back(FormedGroup{});
  EXPECT_FALSE(core::ValidatePartition(problem, empty_group).ok());
}

TEST(MissingSlotScore, FollowsPolicyAndSemantics) {
  const auto matrix = data::PaperExample1();  // scale 1..5
  auto problem = ValidProblem(matrix);

  problem.semantics = Semantics::kLeastMisery;
  problem.missing = grouprec::MissingRatingPolicy::kScaleMin;
  EXPECT_DOUBLE_EQ(core::MissingSlotScore(problem, 4), 1.0);

  problem.semantics = Semantics::kAggregateVoting;
  EXPECT_DOUBLE_EQ(core::MissingSlotScore(problem, 4), 4.0);  // r_min * |g|

  problem.missing = grouprec::MissingRatingPolicy::kZero;
  EXPECT_DOUBLE_EQ(core::MissingSlotScore(problem, 4), 0.0);

  problem.missing = grouprec::MissingRatingPolicy::kSkipUser;
  EXPECT_DOUBLE_EQ(core::MissingSlotScore(problem, 4), 1.0);
}

TEST(AggregateListSatisfaction, ShortListsFallBackToMissingSlots) {
  const auto matrix = data::PaperExample1();
  auto problem = ValidProblem(matrix);
  problem.k = 5;  // catalogue has only 3 items -> list exhausted at 3
  grouprec::GroupTopK list;
  list.items = {{0, 4.0}, {1, 3.0}, {2, 2.0}};

  problem.aggregation = Aggregation::kSum;
  // Catalogue exhausted: aggregates as-is.
  EXPECT_DOUBLE_EQ(core::AggregateListSatisfaction(problem, 2, list), 9.0);

  // Now pretend the list is short because candidates ran out (2 of 3).
  grouprec::GroupTopK short_list;
  short_list.items = {{0, 4.0}, {1, 3.0}};
  problem.k = 3;
  problem.aggregation = Aggregation::kMin;
  EXPECT_DOUBLE_EQ(core::AggregateListSatisfaction(problem, 2, short_list),
                   1.0);  // missing slot at r_min
  problem.aggregation = Aggregation::kSum;
  EXPECT_DOUBLE_EQ(core::AggregateListSatisfaction(problem, 2, short_list),
                   8.0);  // 4 + 3 + 1
  problem.aggregation = Aggregation::kMax;
  EXPECT_DOUBLE_EQ(core::AggregateListSatisfaction(problem, 2, short_list),
                   4.0);
}

}  // namespace
}  // namespace groupform
