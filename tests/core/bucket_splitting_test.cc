// Bucket splitting under LM (DESIGN.md §4.1b): the behaviour that makes
// the paper's Theorem 2/3 guarantees actually hold when intermediate
// buckets are larger than the group budget requires.
#include <vector>

#include <gtest/gtest.h>

#include "core/formation.h"
#include "core/greedy.h"
#include "data/rating_matrix.h"
#include "exact/subset_dp.h"
#include "grouprec/semantics.h"

namespace groupform {
namespace {

using core::FormationProblem;
using grouprec::Aggregation;
using grouprec::Semantics;

FormationProblem Problem(const data::RatingMatrix& matrix,
                         Semantics semantics, Aggregation aggregation, int k,
                         int ell) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = semantics;
  problem.aggregation = aggregation;
  problem.k = k;
  problem.max_groups = ell;
  return problem;
}

/// `count` users with identical ratings (5, 1, 1).
data::RatingMatrix IdenticalUsers(int count) {
  std::vector<std::vector<Rating>> rows(
      static_cast<std::size_t>(count), std::vector<Rating>{5.0, 1.0, 1.0});
  auto matrix = data::RatingMatrix::FromDense(rows);
  EXPECT_TRUE(matrix.ok());
  return std::move(matrix).value();
}

TEST(BucketSplitting, OneGiantLmBucketFillsEveryGroupSlot) {
  // 10 identical users, ell = 5: whole-bucket greedy would form one group
  // scoring 5 and stop; with splitting the greedy matches the optimum
  // 5 * 5 = 25 (four carved groups + the residual, all scoring 5).
  const auto matrix = IdenticalUsers(10);
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kMax, 1, 5);
  const auto grd = core::RunGreedy(problem);
  ASSERT_TRUE(grd.ok());
  EXPECT_EQ(grd->num_groups(), 5);
  EXPECT_DOUBLE_EQ(grd->objective, 25.0);
  const auto opt = exact::SubsetDpSolver(problem).Run();
  ASSERT_TRUE(opt.ok());
  EXPECT_DOUBLE_EQ(grd->objective, opt->objective);
  EXPECT_TRUE(core::ValidatePartition(problem, *grd).ok());
}

TEST(BucketSplitting, SplitPartsAllCarryTheBucketScore) {
  const auto matrix = IdenticalUsers(7);
  const auto problem =
      Problem(matrix, Semantics::kLeastMisery, Aggregation::kMin, 2, 4);
  const auto grd = core::RunGreedy(problem);
  ASSERT_TRUE(grd.ok());
  // Key (i0, i1 : 1): every part of the split bucket scores the shared
  // bottom rating 1.
  for (const auto& g : grd->groups) {
    EXPECT_DOUBLE_EQ(g.satisfaction, 1.0);
  }
  EXPECT_EQ(grd->num_groups(), 4);
  EXPECT_DOUBLE_EQ(grd->objective, 4.0);
}

TEST(BucketSplitting, SecondSlotOfStrongBucketBeatsWeakBucket) {
  // Bucket A: 3 users with top rating 5. Bucket B: 1 user with top rating
  // 2. ell = 3 gives two slots before the residual: score-greedy spends
  // both on A (5 + 5) rather than A + B (5 + 2).
  const auto matrix = data::RatingMatrix::FromDense({
      {5.0, 1.0},  // a0
      {5.0, 1.0},  // a1
      {5.0, 1.0},  // a2
      {1.0, 2.0},  // b
  });
  ASSERT_TRUE(matrix.ok());
  const auto problem =
      Problem(*matrix, Semantics::kLeastMisery, Aggregation::kMax, 1, 3);
  const auto grd = core::RunGreedy(problem);
  ASSERT_TRUE(grd.ok());
  // Slots: {a0} and {a1, a2} (the bucket's remaining member rides in its
  // last slot at unchanged score); residual {b} scores 2. Objective
  // 5 + 5 + 2 = 12, which here matches the optimum.
  EXPECT_DOUBLE_EQ(grd->objective, 12.0);
  const auto opt = exact::SubsetDpSolver(problem).Run();
  ASSERT_TRUE(opt.ok());
  EXPECT_DOUBLE_EQ(opt->objective, 12.0);
  // A + B whole-bucket selection would only reach 5 + 2 + residual; the
  // split stays within the Theorem 2 bound trivially.
  EXPECT_LE(opt->objective - grd->objective, 5.0);
}

TEST(BucketSplitting, AvBucketsAreNeverSplit) {
  // Under AV, splitting a bucket redistributes its summed score, so the
  // greedy keeps buckets whole: 10 identical users with ell = 5 stay one
  // group whose AV score equals the sum over all members.
  const auto matrix = IdenticalUsers(10);
  const auto problem = Problem(matrix, Semantics::kAggregateVoting,
                               Aggregation::kMax, 1, 5);
  const auto grd = core::RunGreedy(problem);
  ASSERT_TRUE(grd.ok());
  EXPECT_EQ(grd->num_groups(), 1);
  EXPECT_DOUBLE_EQ(grd->objective, 50.0);  // 10 members x rating 5
}

TEST(BucketSplitting, TiesAreAllocatedBreadthFirst) {
  // Two equal-score buckets of two users each, ell = 3: both buckets get
  // one slot each (the paper's whole-bucket trace), rather than one
  // bucket being split into singletons.
  const auto matrix = data::RatingMatrix::FromDense({
      {5.0, 1.0, 1.0},
      {5.0, 1.0, 1.0},
      {1.0, 5.0, 1.0},
      {1.0, 5.0, 1.0},
      {1.0, 1.0, 2.0},
  });
  ASSERT_TRUE(matrix.ok());
  const auto problem =
      Problem(*matrix, Semantics::kLeastMisery, Aggregation::kMax, 1, 3);
  const auto grd = core::RunGreedy(problem);
  ASSERT_TRUE(grd.ok());
  ASSERT_EQ(grd->num_groups(), 3);
  EXPECT_EQ(grd->groups[0].members, (std::vector<UserId>{0, 1}));
  EXPECT_EQ(grd->groups[1].members, (std::vector<UserId>{2, 3}));
  EXPECT_EQ(grd->groups[2].members, (std::vector<UserId>{4}));
  EXPECT_DOUBLE_EQ(grd->objective, 12.0);
}

}  // namespace
}  // namespace groupform
