// core/delta.h: validating/folding delta sequences, epoch
// materialisation, assignment carry, and the start-assignment encoding
// (DESIGN.md §13). Every rejection is INVALID_ARGUMENT with the delta
// index in the message — never a GF_CHECK abort.
#include "core/delta.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/solver.h"
#include "data/rating_matrix.h"

namespace groupform::core {
namespace {

using Kind = PopulationDelta::Kind;

TEST(ApplyDeltas, EmptySequenceIsIdenticalToBase) {
  const auto base = [] {
    data::RatingScale scale;
    data::RatingMatrixBuilder builder(3, 2, scale);
    (void)builder.AddRating(0, 0, 3.0);
    return std::move(builder).Build();
  }();
  const auto applied = ApplyDeltas(base, {});
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_TRUE(applied->identical_to_base);
  EXPECT_EQ(applied->active_users, (std::vector<UserId>{0, 1, 2}));
  EXPECT_TRUE(applied->overlays.empty());
}

TEST(ApplyDeltas, CancellingSequenceSharesTheBase) {
  const auto base = [] {
    data::RatingScale scale;
    data::RatingMatrixBuilder builder(3, 2, scale);
    (void)builder.AddRating(0, 0, 3.0);
    return std::move(builder).Build();
  }();
  const std::vector<PopulationDelta> deltas = {
      {Kind::kRemoveUser, 1},
      {Kind::kAddUser, 1},
      // A rerate landing exactly on the base value is not effective.
      {Kind::kRerate, 0, 0, 3.0},
  };
  const auto applied = ApplyDeltas(base, deltas);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_TRUE(applied->identical_to_base);
}

TEST(ApplyDeltas, RemovalAndOverlayFold) {
  const auto base = [] {
    data::RatingScale scale;
    data::RatingMatrixBuilder builder(4, 3, scale);
    (void)builder.AddRating(0, 0, 3.0);
    (void)builder.AddRating(2, 1, 2.0);
    return std::move(builder).Build();
  }();
  const std::vector<PopulationDelta> deltas = {
      {Kind::kRemoveUser, 1},
      {Kind::kRerate, 2, 1, 4.0},
      {Kind::kRerate, 2, 1, 5.0},  // later rerate wins
      {Kind::kRerate, 0, 2, 1.0},  // fills an unobserved cell
  };
  const auto applied = ApplyDeltas(base, deltas);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_FALSE(applied->identical_to_base);
  EXPECT_EQ(applied->active_users, (std::vector<UserId>{0, 2, 3}));
  ASSERT_EQ(applied->overlays.size(), 2u);
  EXPECT_EQ(applied->overlays[0].user, 0);
  EXPECT_EQ(applied->overlays[0].item, 2);
  EXPECT_EQ(applied->overlays[0].rating, 1.0);
  EXPECT_EQ(applied->overlays[1].user, 2);
  EXPECT_EQ(applied->overlays[1].rating, 5.0);
}

TEST(ApplyDeltas, RejectionsNameTheDeltaIndex) {
  const auto base = [] {
    data::RatingScale scale;
    scale.min = 1.0;
    scale.max = 5.0;
    data::RatingMatrixBuilder builder(3, 2, scale);
    (void)builder.AddRating(0, 0, 3.0);
    return std::move(builder).Build();
  }();
  const struct {
    const char* what;
    std::vector<PopulationDelta> deltas;
  } cases[] = {
      {"add of an active user", {{Kind::kAddUser, 1}}},
      {"remove of an inactive user",
       {{Kind::kRemoveUser, 1}, {Kind::kRemoveUser, 1}}},
      {"rerate of an inactive user",
       {{Kind::kRemoveUser, 1}, {Kind::kRerate, 1, 0, 2.0}}},
      {"out-of-range user", {{Kind::kRemoveUser, 99}}},
      {"out-of-range item", {{Kind::kRerate, 0, 99, 2.0}}},
      {"rating outside the scale", {{Kind::kRerate, 0, 0, 9.0}}},
      {"no active users left",
       {{Kind::kRemoveUser, 0},
        {Kind::kRemoveUser, 1},
        {Kind::kRemoveUser, 2}}},
  };
  for (const auto& test_case : cases) {
    const auto applied = ApplyDeltas(base, test_case.deltas);
    ASSERT_FALSE(applied.ok()) << test_case.what;
    EXPECT_EQ(applied.status().code(),
              common::StatusCode::kInvalidArgument)
        << test_case.what;
  }
  // The failing index is named so a client can point at its own list.
  const std::vector<PopulationDelta> two = {{Kind::kRemoveUser, 1},
                                            {Kind::kRemoveUser, 1}};
  const auto applied = ApplyDeltas(base, two);
  EXPECT_NE(applied.status().message().find("delta 1"), std::string::npos)
      << applied.status();
}

TEST(MaterializeDeltas, SubsetsUsersAndAppliesOverlays) {
  const auto base = [] {
    data::RatingScale scale;
    data::RatingMatrixBuilder builder(4, 3, scale);
    (void)builder.AddRating(0, 0, 3.0);
    (void)builder.AddRating(1, 1, 4.0);
    (void)builder.AddRating(2, 2, 2.0);
    (void)builder.AddRating(3, 0, 5.0);
    return std::move(builder).Build();
  }();
  const std::vector<PopulationDelta> deltas = {
      {Kind::kRemoveUser, 1},
      {Kind::kRerate, 2, 2, 5.0},
      {Kind::kRerate, 3, 1, 1.0},
  };
  const auto applied = ApplyDeltas(base, deltas);
  ASSERT_TRUE(applied.ok()) << applied.status();
  const auto epoch = MaterializeDeltas(base, *applied);
  ASSERT_TRUE(epoch.ok()) << epoch.status();
  // Users {0, 2, 3} re-indexed densely to {0, 1, 2}; items preserved.
  EXPECT_EQ(epoch->num_users(), 3);
  EXPECT_EQ(epoch->num_items(), 3);
  EXPECT_EQ(epoch->GetRatingOr(0, 0, -1.0), 3.0);
  EXPECT_EQ(epoch->GetRatingOr(1, 2, -1.0), 5.0);  // overlay override
  EXPECT_EQ(epoch->GetRatingOr(2, 0, -1.0), 5.0);  // base cell of user 3
  EXPECT_EQ(epoch->GetRatingOr(2, 1, -1.0), 1.0);  // overlay new cell
}

TEST(MaterializeDeltas, PureRemovalMatchesSubsetUsers) {
  const auto base = [] {
    data::RatingScale scale;
    data::RatingMatrixBuilder builder(4, 3, scale);
    (void)builder.AddRating(0, 0, 3.0);
    (void)builder.AddRating(2, 1, 2.0);
    return std::move(builder).Build();
  }();
  const std::vector<PopulationDelta> deltas = {{Kind::kRemoveUser, 1}};
  const auto applied = ApplyDeltas(base, deltas);
  ASSERT_TRUE(applied.ok());
  const auto epoch = MaterializeDeltas(base, *applied);
  ASSERT_TRUE(epoch.ok());
  const auto subset = base.SubsetUsers(applied->active_users);
  ASSERT_TRUE(subset.ok());
  EXPECT_EQ(epoch->num_users(), subset->num_users());
  for (UserId u = 0; u < epoch->num_users(); ++u) {
    EXPECT_TRUE(std::ranges::equal(epoch->RatingsOf(u),
                                   subset->RatingsOf(u)))
        << "user " << u;
  }
}

TEST(DeltaSequenceHash, OrderAndContentSensitive) {
  const std::vector<PopulationDelta> a = {{Kind::kRemoveUser, 1},
                                          {Kind::kRemoveUser, 2}};
  const std::vector<PopulationDelta> b = {{Kind::kRemoveUser, 2},
                                          {Kind::kRemoveUser, 1}};
  std::vector<PopulationDelta> c = a;
  c[1].user = 3;
  EXPECT_EQ(DeltaSequenceHash(a), DeltaSequenceHash(a));
  EXPECT_NE(DeltaSequenceHash(a), DeltaSequenceHash(b));
  EXPECT_NE(DeltaSequenceHash(a), DeltaSequenceHash(c));
  EXPECT_NE(DeltaSequenceHash(a), DeltaSequenceHash({}));
}

TEST(AdaptAssignment, DropsDeparturesAndSeatsArrivals) {
  const std::vector<std::vector<UserId>> previous = {{0, 1, 2}, {3, 4}};
  // User 1 departed; users 5 and 6 arrived.
  const std::vector<UserId> active = {0, 2, 3, 4, 5, 6};
  const auto adapted = AdaptAssignment(previous, active, /*max_groups=*/3);
  // Below max_groups, the first arrival opens a fresh slot; the second
  // joins the smallest existing group (the fresh singleton).
  ASSERT_EQ(adapted.size(), 3u);
  EXPECT_EQ(adapted[0], (std::vector<UserId>{0, 2}));
  EXPECT_EQ(adapted[1], (std::vector<UserId>{3, 4}));
  EXPECT_EQ(adapted[2], (std::vector<UserId>{5, 6}));
}

TEST(AdaptAssignment, RespectsMaxGroupsAndCoversExactlyActive) {
  const std::vector<std::vector<UserId>> previous = {{0}, {1}};
  const std::vector<UserId> active = {0, 1, 2, 3};
  const auto adapted = AdaptAssignment(previous, active, /*max_groups=*/2);
  ASSERT_EQ(adapted.size(), 2u);
  std::vector<UserId> covered;
  for (const auto& group : adapted) {
    covered.insert(covered.end(), group.begin(), group.end());
  }
  std::sort(covered.begin(), covered.end());
  EXPECT_EQ(covered, active);
}

TEST(AssignmentToLocal, ReindexesAndRejectsStrays) {
  const std::vector<UserId> active = {2, 5, 9};
  const auto local =
      AssignmentToLocal({{2, 9}, {5}}, active);
  ASSERT_TRUE(local.ok()) << local.status();
  EXPECT_EQ(*local,
            (std::vector<std::vector<UserId>>{{0, 2}, {1}}));
  const auto stray = AssignmentToLocal({{2, 7}}, active);
  ASSERT_FALSE(stray.ok());
  EXPECT_EQ(stray.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(StartAssignmentEncoding, RoundTripsThroughSolverOptions) {
  const std::vector<std::vector<UserId>> groups = {{0, 2, 5}, {1, 3}, {4}};
  const std::string encoded = EncodeStartAssignment(groups);
  EXPECT_EQ(encoded, "0,2,5|1,3|4");
  const auto decoded = DecodeStartAssignment(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, groups);

  SolverOptions options;
  options.SetStartAssignment(groups);
  const auto through = options.GetStartAssignment();
  ASSERT_TRUE(through.ok()) << through.status();
  EXPECT_EQ(*through, groups);

  // Absent key decodes to "no warm start", not an error.
  const auto absent = SolverOptions().GetStartAssignment();
  ASSERT_TRUE(absent.ok());
  EXPECT_TRUE(absent->empty());
}

TEST(StartAssignmentEncoding, DecodeIsStrict) {
  for (const char* bad : {"a", "0,,1", "0|x", "-1", "2147483648"}) {
    const auto decoded = DecodeStartAssignment(bad);
    ASSERT_FALSE(decoded.ok()) << bad;
    EXPECT_EQ(decoded.status().code(),
              common::StatusCode::kInvalidArgument)
        << bad;
  }
}

TEST(DeltaKindTokens, RoundTripAndReject) {
  for (const auto kind :
       {Kind::kAddUser, Kind::kRemoveUser, Kind::kRerate}) {
    const auto parsed = DeltaKindFromString(DeltaKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(DeltaKindFromString("drop_user").ok());
}

}  // namespace
}  // namespace groupform::core
