// Invariant sweep over the full greedy family: every (semantics,
// aggregation, k, ell, dataset) combination must produce a valid
// partition whose self-reported objective matches an independent
// recomputation, deterministically.
#include <tuple>

#include <gtest/gtest.h>

#include "core/formation.h"
#include "core/greedy.h"
#include "data/synthetic.h"
#include "grouprec/semantics.h"

namespace groupform {
namespace {

using grouprec::Aggregation;
using grouprec::Semantics;

enum class DataKind { kDenseClustered, kSparseYahoo, kUniform };

class GreedyInvariantsTest
    : public testing::TestWithParam<
          std::tuple<Semantics, Aggregation, int, int, DataKind>> {
 protected:
  static data::RatingMatrix MakeMatrix(DataKind kind) {
    switch (kind) {
      case DataKind::kDenseClustered:
        return data::GenerateClusteredDense(120, 40, 10, 101);
      case DataKind::kSparseYahoo: {
        auto config = data::YahooMusicLikeConfig(150, 60, 103);
        config.min_ratings_per_user = 8;
        config.max_ratings_per_user = 25;
        return data::GenerateLatentFactor(config);
      }
      case DataKind::kUniform:
        return data::GenerateUniformDense(100, 30,
                                          data::RatingScale{1.0, 5.0}, 105);
    }
    return data::GenerateUniformDense(10, 5, data::RatingScale{1.0, 5.0},
                                      1);
  }
};

TEST_P(GreedyInvariantsTest, ValidDeterministicAndHonest) {
  const auto [semantics, aggregation, k, ell, kind] = GetParam();
  const auto matrix = MakeMatrix(kind);
  core::FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = semantics;
  problem.aggregation = aggregation;
  problem.k = k;
  problem.max_groups = ell;

  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok()) << result.status();

  // (1) It is a partition respecting the group budget.
  EXPECT_TRUE(core::ValidatePartition(problem, *result).ok())
      << problem.ToString();

  // (2) The reported objective is not overstated: recomputing every
  // group's list from scratch over the full catalogue gives the same
  // value (candidate_depth is 0 here, so equality, not just a bound).
  EXPECT_NEAR(core::RecomputeObjective(problem, *result), result->objective,
              1e-9)
      << problem.ToString();

  // (3) Determinism.
  const auto again = core::RunGreedy(problem);
  ASSERT_TRUE(again.ok());
  EXPECT_DOUBLE_EQ(result->objective, again->objective);
  ASSERT_EQ(result->num_groups(), again->num_groups());

  // (4) Group satisfactions are within the achievable range.
  const double r_max = matrix.scale().max;
  const int group_budget_score_cap =
      aggregation == Aggregation::kSum ? k : 1;
  for (const auto& g : result->groups) {
    const double cap =
        (semantics == Semantics::kAggregateVoting
             ? r_max * static_cast<double>(g.members.size())
             : r_max) *
        group_budget_score_cap;
    EXPECT_LE(g.satisfaction, cap + 1e-9) << problem.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyInvariantsTest,
    testing::Combine(
        testing::Values(Semantics::kLeastMisery,
                        Semantics::kAggregateVoting),
        testing::Values(Aggregation::kMax, Aggregation::kMin,
                        Aggregation::kSum),
        testing::Values(1, 3, 7),    // k
        testing::Values(1, 5, 40),   // ell
        testing::Values(DataKind::kDenseClustered, DataKind::kSparseYahoo,
                        DataKind::kUniform)));

}  // namespace
}  // namespace groupform
