// Within-group sharding of core::ScoreGroups (DESIGN.md §10.3): chunk
// boundaries are an execution detail — lists and satisfactions are
// byte-identical to the unsharded path at every chunk size and thread
// count, including degenerate chunking and empty groups.
#include <gtest/gtest.h>

#include <vector>

#include "common/thread_pool.h"
#include "core/formation.h"
#include "data/synthetic.h"
#include "grouprec/semantics.h"

namespace groupform {
namespace {

using core::FormationProblem;
using core::GroupScore;
using core::ScoreGroupsOptions;

FormationProblem Problem(const data::RatingMatrix& matrix,
                         grouprec::Semantics semantics,
                         grouprec::Aggregation aggregation) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = semantics;
  problem.aggregation = aggregation;
  problem.k = 4;
  problem.max_groups = 8;
  return problem;
}

/// An uneven partition: one giant group, several small ones, one empty.
std::vector<std::vector<UserId>> UnevenGroups(std::int32_t num_users) {
  std::vector<std::vector<UserId>> groups(6);
  for (UserId u = 0; u < num_users; ++u) {
    // Two thirds of the population lands in group 0 (the "residual").
    const std::size_t g =
        u % 3 != 0 ? 0 : 1 + static_cast<std::size_t>(u % 4);
    groups[g].push_back(u);
  }
  groups[5].clear();  // deliberately empty
  return groups;
}

void ExpectIdenticalScores(const std::vector<GroupScore>& actual,
                           const std::vector<GroupScore>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t g = 0; g < expected.size(); ++g) {
    EXPECT_EQ(actual[g].satisfaction, expected[g].satisfaction)
        << "group " << g;  // bitwise
    EXPECT_EQ(actual[g].list.items, expected[g].list.items) << "group " << g;
  }
}

class ScoreGroupsShardTest : public ::testing::Test {
 protected:
  void TearDown() override {
    common::ThreadPool::SetDefaultThreadCount(0);
  }
};

TEST_F(ScoreGroupsShardTest, ShardedEqualsUnshardedAcrossChunkSizes) {
  const auto matrix = data::GenerateLatentFactor(
      data::MovieLensLikeConfig(45, 60, /*seed=*/7));
  const auto groups = UnevenGroups(matrix.num_users());
  for (const auto semantics : {grouprec::Semantics::kLeastMisery,
                               grouprec::Semantics::kAggregateVoting}) {
    for (const auto aggregation :
         {grouprec::Aggregation::kMax, grouprec::Aggregation::kMin,
          grouprec::Aggregation::kSum}) {
      const auto problem = Problem(matrix, semantics, aggregation);
      const auto scorer = problem.MakeScorer();
      ScoreGroupsOptions unsharded;
      unsharded.shard_min_items = 0;  // disabled: one task per group
      const auto reference =
          core::ScoreGroups(problem, scorer, groups, unsharded);
      // Chunk sizes from one-item-per-shard up to chunk > catalogue.
      for (const std::int64_t chunk : {1, 7, 59, 60, 61, 4096}) {
        ScoreGroupsOptions options;
        options.shard_min_items = chunk;
        const auto sharded =
            core::ScoreGroups(problem, scorer, groups, options);
        SCOPED_TRACE(chunk);
        ExpectIdenticalScores(sharded, reference);
      }
    }
  }
}

TEST_F(ScoreGroupsShardTest, ShardedIdenticalAcrossThreadCounts) {
  const auto matrix = data::GenerateLatentFactor(
      data::MovieLensLikeConfig(40, 50, /*seed=*/11));
  const auto problem = Problem(matrix, grouprec::Semantics::kLeastMisery,
                               grouprec::Aggregation::kMin);
  const auto scorer = problem.MakeScorer();
  const auto groups = UnevenGroups(matrix.num_users());
  ScoreGroupsOptions options;
  options.shard_min_items = 8;  // force many shards per group
  common::ThreadPool::SetDefaultThreadCount(1);
  const auto serial = core::ScoreGroups(problem, scorer, groups, options);
  for (const int threads : {2, 8}) {
    common::ThreadPool::SetDefaultThreadCount(threads);
    const auto parallel =
        core::ScoreGroups(problem, scorer, groups, options);
    SCOPED_TRACE(threads);
    ExpectIdenticalScores(parallel, serial);
  }
}

TEST_F(ScoreGroupsShardTest, UnionCandidatePathIsUnaffectedBySharding) {
  const auto matrix = data::GenerateLatentFactor(
      data::MovieLensLikeConfig(30, 40, /*seed=*/19));
  auto problem = Problem(matrix, grouprec::Semantics::kAggregateVoting,
                         grouprec::Aggregation::kSum);
  problem.candidate_depth = 6;  // truncated policy: sharding not applied
  const auto scorer = problem.MakeScorer();
  const auto groups = UnevenGroups(matrix.num_users());
  ScoreGroupsOptions unsharded;
  unsharded.shard_min_items = 0;
  const auto reference =
      core::ScoreGroups(problem, scorer, groups, unsharded);
  ScoreGroupsOptions options;
  options.shard_min_items = 4;
  const auto result = core::ScoreGroups(problem, scorer, groups, options);
  ExpectIdenticalScores(result, reference);
}

TEST_F(ScoreGroupsShardTest, AllGroupsEmptyScoresZeroEverywhere) {
  const auto matrix = data::GenerateLatentFactor(
      data::MovieLensLikeConfig(10, 20, /*seed=*/23));
  const auto problem = Problem(matrix, grouprec::Semantics::kLeastMisery,
                               grouprec::Aggregation::kMin);
  const auto scorer = problem.MakeScorer();
  const std::vector<std::vector<UserId>> groups(4);  // all empty
  ScoreGroupsOptions options;
  options.shard_min_items = 1;
  const auto scores = core::ScoreGroups(problem, scorer, groups, options);
  ASSERT_EQ(scores.size(), groups.size());
  for (const auto& score : scores) {
    EXPECT_EQ(score.satisfaction, 0.0);
    EXPECT_TRUE(score.list.empty());
  }
}

TEST_F(ScoreGroupsShardTest, DefaultOptionsMatchExplicitDefaults) {
  const auto matrix = data::GenerateLatentFactor(
      data::MovieLensLikeConfig(25, 30, /*seed=*/29));
  const auto problem = Problem(matrix, grouprec::Semantics::kLeastMisery,
                               grouprec::Aggregation::kMin);
  const auto scorer = problem.MakeScorer();
  const auto groups = UnevenGroups(matrix.num_users());
  const auto implicit = core::ScoreGroups(problem, scorer, groups);
  const auto explicit_default =
      core::ScoreGroups(problem, scorer, groups, ScoreGroupsOptions());
  ExpectIdenticalScores(implicit, explicit_default);
}

}  // namespace
}  // namespace groupform
