// GroupScorer: the LM / AV semantics (Definitions 1 and 2), group top-k
// computation, candidate policies, and missing-rating handling.
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/paper_examples.h"
#include "data/rating_matrix.h"
#include "data/synthetic.h"
#include "grouprec/group_scorer.h"

namespace groupform {
namespace {

using data::RatingMatrix;
using data::RatingScale;
using grouprec::Aggregation;
using grouprec::GroupScorer;
using grouprec::MissingRatingPolicy;
using grouprec::Semantics;

GroupScorer MakeScorer(const RatingMatrix& matrix, Semantics semantics,
                       MissingRatingPolicy missing =
                           MissingRatingPolicy::kScaleMin) {
  GroupScorer::Options options;
  options.semantics = semantics;
  options.missing = missing;
  return GroupScorer(matrix, options);
}

TEST(GroupScorer, LeastMiseryItemScoreIsTheMinimum) {
  const auto matrix = data::PaperExample1();
  const auto scorer = MakeScorer(matrix, Semantics::kLeastMisery);
  const std::vector<UserId> group = {1, 5};  // u2, u6
  // i3: min(5, 5) = 5; i1: min(2, 1) = 1; i2: min(3, 2) = 2.
  EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 2), 5.0);
  EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 0), 1.0);
  EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 1), 2.0);
}

TEST(GroupScorer, AggregateVotingItemScoreIsTheSum) {
  const auto matrix = data::PaperExample2();
  const auto scorer = MakeScorer(matrix, Semantics::kAggregateVoting);
  const std::vector<UserId> group = {0, 1, 4, 5};  // u1, u2, u5, u6
  // i3: 4+3+3+1 = 11; i2: 1+4+2+2 = 9; i1: 3+1+1+3 = 8.
  EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 2), 11.0);
  EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 1), 9.0);
  EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 0), 8.0);
}

TEST(GroupScorer, TopKOrdersByScoreThenItemId) {
  const auto matrix = data::PaperExample2();
  const auto scorer = MakeScorer(matrix, Semantics::kAggregateVoting);
  const std::vector<UserId> group = {0, 1, 4, 5};
  const auto list = scorer.TopKAllItems(group, 2);
  ASSERT_EQ(list.size(), 2);
  EXPECT_EQ(list.items[0].item, 2);  // i3, AV 11
  EXPECT_DOUBLE_EQ(list.items[0].score, 11.0);
  EXPECT_EQ(list.items[1].item, 1);  // i2, AV 9
  EXPECT_DOUBLE_EQ(list.items[1].score, 9.0);
}

TEST(GroupScorer, TopKMatchesItemScoreForEveryCandidate) {
  const auto matrix = data::PaperExample1();
  for (const auto semantics :
       {Semantics::kLeastMisery, Semantics::kAggregateVoting}) {
    const auto scorer = MakeScorer(matrix, semantics);
    const std::vector<UserId> group = {0, 2, 4};
    const auto list = scorer.TopKAllItems(group, 3);
    ASSERT_EQ(list.size(), 3);
    for (const auto& si : list.items) {
      EXPECT_DOUBLE_EQ(si.score, scorer.ItemScore(group, si.item));
    }
  }
}

TEST(GroupScorer, SingletonGroupScoresAreTheUsersOwnRatings) {
  const auto matrix = data::PaperExample1();
  for (const auto semantics :
       {Semantics::kLeastMisery, Semantics::kAggregateVoting}) {
    const auto scorer = MakeScorer(matrix, semantics);
    const std::vector<UserId> group = {1};  // u2: (2, 3, 5)
    EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 0), 2.0);
    EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 1), 3.0);
    EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 2), 5.0);
  }
}

RatingMatrix SparseMatrix() {
  // 3 users x 4 items; user 2 never rated item 3.
  data::RatingMatrixBuilder builder(3, 4, RatingScale{1.0, 5.0});
  EXPECT_TRUE(builder.AddRating(0, 0, 5).ok());
  EXPECT_TRUE(builder.AddRating(0, 1, 4).ok());
  EXPECT_TRUE(builder.AddRating(0, 3, 2).ok());
  EXPECT_TRUE(builder.AddRating(1, 0, 3).ok());
  EXPECT_TRUE(builder.AddRating(1, 1, 5).ok());
  EXPECT_TRUE(builder.AddRating(1, 3, 4).ok());
  EXPECT_TRUE(builder.AddRating(2, 0, 4).ok());
  EXPECT_TRUE(builder.AddRating(2, 1, 2).ok());
  return std::move(builder).Build();
}

TEST(GroupScorer, MissingRatingPolicies) {
  const auto matrix = SparseMatrix();
  const std::vector<UserId> group = {0, 1, 2};

  // LM, kScaleMin: item 3 has a non-rater, so it floors at r_min = 1.
  {
    const auto scorer = MakeScorer(matrix, Semantics::kLeastMisery,
                                   MissingRatingPolicy::kScaleMin);
    EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 3), 1.0);
    EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 2), 1.0);  // nobody rated i2
  }
  // LM, kZero: missing contributes 0.
  {
    const auto scorer = MakeScorer(matrix, Semantics::kLeastMisery,
                                   MissingRatingPolicy::kZero);
    EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 3), 0.0);
    EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 2), 0.0);
  }
  // LM, kSkipUser: min over raters only: min(2, 4) = 2.
  {
    const auto scorer = MakeScorer(matrix, Semantics::kLeastMisery,
                                   MissingRatingPolicy::kSkipUser);
    EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 3), 2.0);
    EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 2), 1.0);  // no raters: r_min
  }
  // AV, kScaleMin: sum + r_min for the non-rater: 2 + 4 + 1 = 7.
  {
    const auto scorer = MakeScorer(matrix, Semantics::kAggregateVoting,
                                   MissingRatingPolicy::kScaleMin);
    EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 3), 7.0);
  }
  // AV, kSkipUser: raters only: 2 + 4 = 6.
  {
    const auto scorer = MakeScorer(matrix, Semantics::kAggregateVoting,
                                   MissingRatingPolicy::kSkipUser);
    EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 3), 6.0);
  }
  // AV, kZero: raters only sum: 6.
  {
    const auto scorer = MakeScorer(matrix, Semantics::kAggregateVoting,
                                   MissingRatingPolicy::kZero);
    EXPECT_DOUBLE_EQ(scorer.ItemScore(group, 3), 6.0);
  }
}

TEST(GroupScorer, TopKAgreesWithItemScoreUnderEveryPolicy) {
  const auto matrix = SparseMatrix();
  const std::vector<UserId> group = {0, 1, 2};
  for (const auto semantics :
       {Semantics::kLeastMisery, Semantics::kAggregateVoting}) {
    for (const auto policy :
         {MissingRatingPolicy::kScaleMin, MissingRatingPolicy::kZero,
          MissingRatingPolicy::kSkipUser}) {
      const auto scorer = MakeScorer(matrix, semantics, policy);
      const auto list = scorer.TopKAllItems(group, 4);
      for (const auto& si : list.items) {
        EXPECT_DOUBLE_EQ(si.score, scorer.ItemScore(group, si.item))
            << "semantics=" << static_cast<int>(semantics)
            << " policy=" << static_cast<int>(policy)
            << " item=" << si.item;
      }
    }
  }
}

TEST(GroupScorer, UnionCandidatesCoverPersonalTopItems) {
  const auto matrix = SparseMatrix();
  const auto scorer = MakeScorer(matrix, Semantics::kLeastMisery);
  const std::vector<UserId> group = {0, 1};
  // Depth 1: candidates = {i0 (u0's best), i1 (u1's best)}.
  const auto list = scorer.TopKUnionCandidates(group, 2, 1);
  ASSERT_EQ(list.size(), 2);
  // LM scores: i0 -> min(5,3)=3, i1 -> min(4,5)=4; order: i1, i0.
  EXPECT_EQ(list.items[0].item, 1);
  EXPECT_DOUBLE_EQ(list.items[0].score, 4.0);
  EXPECT_EQ(list.items[1].item, 0);
  EXPECT_DOUBLE_EQ(list.items[1].score, 3.0);
}

TEST(GroupScorer, AggregateSatisfactionMaxMinSum) {
  grouprec::GroupTopK list;
  list.items = {{0, 5.0}, {1, 3.0}, {2, 2.0}};
  EXPECT_DOUBLE_EQ(
      GroupScorer::AggregateSatisfaction(list, Aggregation::kMax), 5.0);
  EXPECT_DOUBLE_EQ(
      GroupScorer::AggregateSatisfaction(list, Aggregation::kMin), 2.0);
  EXPECT_DOUBLE_EQ(
      GroupScorer::AggregateSatisfaction(list, Aggregation::kSum), 10.0);
  EXPECT_DOUBLE_EQ(GroupScorer::AggregateSatisfaction(grouprec::GroupTopK{},
                                                      Aggregation::kSum),
                   0.0);
}

TEST(GroupScorer, EmptyCandidatesGiveEmptyList) {
  const auto matrix = SparseMatrix();
  const auto scorer = MakeScorer(matrix, Semantics::kLeastMisery);
  const std::vector<UserId> group = {0, 1};
  const std::vector<ItemId> no_candidates;
  EXPECT_TRUE(scorer.TopK(group, 3, no_candidates).empty());
}

TEST(GroupScorer, TopKItemRangeMatchesExplicitCandidateList) {
  // The sharding primitive: bit-identical to TopK over the equivalent
  // explicit candidate list, for every semantics x missing policy, on a
  // sparse matrix (so raters-incomplete items exercise every branch).
  const auto matrix = data::GenerateLatentFactor(
      data::MovieLensLikeConfig(18, 30, /*seed=*/91));
  const std::vector<UserId> group = {0, 3, 7, 11, 16};
  for (const auto semantics :
       {Semantics::kLeastMisery, Semantics::kAggregateVoting}) {
    for (const auto missing :
         {MissingRatingPolicy::kScaleMin, MissingRatingPolicy::kZero,
          MissingRatingPolicy::kSkipUser}) {
      const auto scorer = MakeScorer(matrix, semantics, missing);
      for (const auto& [begin, end] :
           std::vector<std::pair<ItemId, ItemId>>{
               {0, 30}, {0, 1}, {7, 19}, {29, 30}, {12, 12}}) {
        std::vector<ItemId> candidates;
        for (ItemId item = begin; item < end; ++item) {
          candidates.push_back(item);
        }
        const auto by_list = scorer.TopK(group, 4, candidates);
        const auto by_range = scorer.TopKItemRange(group, 4, begin, end);
        EXPECT_EQ(by_range.items, by_list.items)
            << "range [" << begin << ", " << end << ")";
      }
    }
  }
}

}  // namespace
}  // namespace groupform
