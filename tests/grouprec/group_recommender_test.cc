// GroupRecommender facade: the forward problem on known instances.
#include <gtest/gtest.h>

#include "data/paper_examples.h"
#include "grouprec/group_recommender.h"

namespace groupform {
namespace {

using grouprec::Aggregation;
using grouprec::GroupRecommender;
using grouprec::Semantics;

GroupRecommender::Options LmOptions(int k) {
  GroupRecommender::Options options;
  options.semantics = Semantics::kLeastMisery;
  options.aggregation = Aggregation::kMin;
  options.k = k;
  return options;
}

TEST(GroupRecommender, PaperExample3Group) {
  const auto matrix = data::PaperExample3();
  const GroupRecommender recommender(matrix, LmOptions(2));
  const std::vector<UserId> group = {0, 1};
  const auto rec = recommender.Recommend(group);
  ASSERT_TRUE(rec.ok()) << rec.status();
  ASSERT_EQ(rec->list.size(), 2);
  EXPECT_EQ(rec->list.items[0].item, 1);  // i2, LM 4
  EXPECT_DOUBLE_EQ(rec->satisfaction, 1.0);  // bottom item LM score
}

TEST(GroupRecommender, AvSemanticsAndSumAggregation) {
  const auto matrix = data::PaperExample2();
  GroupRecommender::Options options;
  options.semantics = Semantics::kAggregateVoting;
  options.aggregation = Aggregation::kSum;
  options.k = 2;
  const GroupRecommender recommender(matrix, options);
  const std::vector<UserId> group = {0, 1, 4, 5};
  const auto rec = recommender.Recommend(group);
  ASSERT_TRUE(rec.ok());
  // AV scores: i3 = 11, i2 = 9 -> sum 20 (the paper's §5 walkthrough).
  EXPECT_DOUBLE_EQ(rec->satisfaction, 20.0);
}

TEST(GroupRecommender, RecommendAllHandlesOverlappingRosters) {
  const auto matrix = data::PaperExample1();
  const GroupRecommender recommender(matrix, LmOptions(1));
  const std::vector<std::vector<UserId>> rosters = {
      {1, 5}, {2, 3}, {1, 2, 3}};  // user 1 appears twice: forward problem
  const auto recs = recommender.RecommendAll(rosters);
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 3u);
  EXPECT_DOUBLE_EQ((*recs)[0].satisfaction, 5.0);  // {u2,u6} on i3
  EXPECT_DOUBLE_EQ((*recs)[1].satisfaction, 5.0);  // {u3,u4} on i2
}

TEST(GroupRecommender, RejectsBadInputs) {
  const auto matrix = data::PaperExample1();
  const GroupRecommender recommender(matrix, LmOptions(2));
  const std::vector<UserId> empty;
  EXPECT_FALSE(recommender.Recommend(empty).ok());
  const std::vector<UserId> out_of_range = {0, 42};
  EXPECT_EQ(recommender.Recommend(out_of_range).status().code(),
            common::StatusCode::kOutOfRange);
}

TEST(GroupRecommender, CandidateDepthTruncation) {
  const auto matrix = data::PaperExample1();
  auto options = LmOptions(2);
  options.candidate_depth = 1;  // union of members' top-1 items only
  const GroupRecommender truncated(matrix, options);
  const GroupRecommender full(matrix, LmOptions(2));
  const std::vector<UserId> group = {0, 4};
  const auto a = truncated.Recommend(group);
  const auto b = full.Recommend(group);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(a->satisfaction, b->satisfaction + 1e-9);
}

}  // namespace
}  // namespace groupform
