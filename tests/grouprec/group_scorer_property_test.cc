// Property sweep for the group recommender: ordering, scale bounds,
// candidate monotonicity, and LM-vs-AV relationships on randomized
// matrices and groups.
#include <tuple>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/synthetic.h"
#include "grouprec/group_scorer.h"

namespace groupform {
namespace {

using grouprec::GroupScorer;
using grouprec::MissingRatingPolicy;
using grouprec::Semantics;

class ScorerPropertyTest
    : public testing::TestWithParam<
          std::tuple<Semantics, MissingRatingPolicy, std::uint64_t>> {};

TEST_P(ScorerPropertyTest, TopKIsSortedBoundedAndConsistent) {
  const auto [semantics, policy, seed] = GetParam();
  auto config = data::YahooMusicLikeConfig(40, 25, seed);
  config.min_ratings_per_user = 3;
  config.max_ratings_per_user = 15;
  const auto matrix = data::GenerateLatentFactor(config);

  GroupScorer::Options options;
  options.semantics = semantics;
  options.missing = policy;
  const GroupScorer scorer(matrix, options);

  common::Rng rng(seed * 31 + 7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto picks = rng.SampleWithoutReplacement(
        matrix.num_users(), 1 + static_cast<std::int64_t>(
                                    rng.NextUint64(6)));
    std::vector<UserId> group;
    for (auto p : picks) group.push_back(static_cast<UserId>(p));
    const int group_size = static_cast<int>(group.size());

    const auto list = scorer.TopKAllItems(group, 8);
    // (1) Sorted by score descending, ties by item id ascending.
    for (int j = 1; j < list.size(); ++j) {
      const auto& prev = list.items[static_cast<std::size_t>(j - 1)];
      const auto& cur = list.items[static_cast<std::size_t>(j)];
      EXPECT_TRUE(prev.score > cur.score ||
                  (prev.score == cur.score && prev.item < cur.item));
    }
    // (2) Scores are within the achievable range of the policy.
    const double upper =
        semantics == Semantics::kAggregateVoting
            ? matrix.scale().max * static_cast<double>(group_size)
            : matrix.scale().max;
    const double lower =
        policy == MissingRatingPolicy::kZero ? 0.0 : matrix.scale().min;
    (void)lower;
    for (const auto& si : list.items) {
      EXPECT_LE(si.score, upper + 1e-9);
      EXPECT_GE(si.score, 0.0);
      // (3) Each reported score agrees with the single-item entry point.
      EXPECT_DOUBLE_EQ(si.score, scorer.ItemScore(group, si.item));
    }
    // (4) Candidate-subset monotonicity: the union-candidate list's
    // scores are pointwise <= the full-catalogue list's scores.
    const auto truncated = scorer.TopKUnionCandidates(group, 8, 3);
    for (int j = 0; j < truncated.size() && j < list.size(); ++j) {
      EXPECT_LE(truncated.items[static_cast<std::size_t>(j)].score,
                list.items[static_cast<std::size_t>(j)].score + 1e-9);
    }
  }
}

TEST_P(ScorerPropertyTest, LmNeverExceedsAvPerMemberAverage) {
  const auto [semantics, policy, seed] = GetParam();
  if (semantics != Semantics::kLeastMisery) GTEST_SKIP();
  const auto matrix = data::GenerateUniformDense(
      12, 10, data::RatingScale{1.0, 5.0}, seed);
  GroupScorer::Options lm_options;
  lm_options.semantics = Semantics::kLeastMisery;
  lm_options.missing = policy;
  GroupScorer::Options av_options;
  av_options.semantics = Semantics::kAggregateVoting;
  av_options.missing = policy;
  const GroupScorer lm(matrix, lm_options);
  const GroupScorer av(matrix, av_options);
  const std::vector<UserId> group = {0, 3, 5, 9};
  for (ItemId item = 0; item < matrix.num_items(); ++item) {
    // min <= mean: LM score <= AV score / |g| on complete data.
    EXPECT_LE(lm.ItemScore(group, item),
              av.ItemScore(group, item) / 4.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScorerPropertyTest,
    testing::Combine(testing::Values(Semantics::kLeastMisery,
                                     Semantics::kAggregateVoting),
                     testing::Values(MissingRatingPolicy::kScaleMin,
                                     MissingRatingPolicy::kZero,
                                     MissingRatingPolicy::kSkipUser),
                     testing::Values(11u, 13u, 17u)));

}  // namespace
}  // namespace groupform
