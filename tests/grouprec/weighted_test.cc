// Weighted-Sum and NDCG extensions (§6).
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/paper_examples.h"
#include "grouprec/weighted.h"

namespace groupform {
namespace {

using grouprec::PositionWeighting;

TEST(PositionWeight, SchemesMatchTheirFormulas) {
  EXPECT_DOUBLE_EQ(PositionWeight(PositionWeighting::kUniform, 0), 1.0);
  EXPECT_DOUBLE_EQ(PositionWeight(PositionWeighting::kUniform, 7), 1.0);
  EXPECT_DOUBLE_EQ(PositionWeight(PositionWeighting::kInversePosition, 0),
                   1.0);
  EXPECT_DOUBLE_EQ(PositionWeight(PositionWeighting::kInversePosition, 3),
                   0.25);
  EXPECT_DOUBLE_EQ(PositionWeight(PositionWeighting::kLogInverse, 0), 1.0);
  EXPECT_NEAR(PositionWeight(PositionWeighting::kLogInverse, 2),
              1.0 / std::log2(4.0), 1e-12);
}

TEST(WeightedSum, UniformEqualsPlainSumAndWeightsDiscountTail) {
  grouprec::GroupTopK list;
  list.items = {{0, 4.0}, {1, 2.0}};
  EXPECT_DOUBLE_EQ(
      grouprec::WeightedSumSatisfaction(list, PositionWeighting::kUniform),
      6.0);
  EXPECT_DOUBLE_EQ(grouprec::WeightedSumSatisfaction(
                       list, PositionWeighting::kInversePosition),
                   4.0 + 1.0);
  // Reordering the same scores changes the weighted value.
  grouprec::GroupTopK reversed;
  reversed.items = {{1, 2.0}, {0, 4.0}};
  EXPECT_GT(grouprec::WeightedSumSatisfaction(
                list, PositionWeighting::kInversePosition),
            grouprec::WeightedSumSatisfaction(
                reversed, PositionWeighting::kInversePosition));
}

TEST(UserNdcg, PerfectListScoresOneAndWorstListLess) {
  const auto matrix = data::PaperExample1();
  // u2 (index 1): ratings (2, 3, 5); personal top-2 = i3, i2.
  const std::vector<ItemId> ideal = {2, 1};
  EXPECT_NEAR(grouprec::UserNdcg(matrix, 1, ideal, 2), 1.0, 1e-12);
  const std::vector<ItemId> bad = {0, 1};  // ratings 2 and 3
  const double ndcg = grouprec::UserNdcg(matrix, 1, bad, 2);
  EXPECT_LT(ndcg, 1.0);
  EXPECT_GT(ndcg, 0.0);
}

TEST(UserNdcg, SwappedPairScoresBelowIdealButAboveReversed) {
  const auto matrix = data::PaperExample1();
  // u1 (index 0): ratings (1, 4, 3); ideal top-3 = i2, i3, i1.
  const double ideal = grouprec::UserNdcg(matrix, 0, {{1, 2, 0}}, 3);
  const double swapped = grouprec::UserNdcg(matrix, 0, {{2, 1, 0}}, 3);
  const double reversed = grouprec::UserNdcg(matrix, 0, {{0, 2, 1}}, 3);
  EXPECT_NEAR(ideal, 1.0, 1e-12);
  EXPECT_LT(swapped, ideal);
  EXPECT_LT(reversed, swapped);
}

TEST(GroupNdcg, LmTakesTheMinAvTakesTheSum) {
  const auto matrix = data::PaperExample1();
  const std::vector<UserId> group = {1, 5};  // u2, u6 share top item i3
  const std::vector<ItemId> list = {2};      // i3
  const double u2 = grouprec::UserNdcg(matrix, 1, list, 1);
  const double u6 = grouprec::UserNdcg(matrix, 5, list, 1);
  EXPECT_NEAR(grouprec::GroupNdcgSatisfaction(
                  matrix, group, list, 1, grouprec::Semantics::kLeastMisery),
              std::min(u2, u6), 1e-12);
  EXPECT_NEAR(
      grouprec::GroupNdcgSatisfaction(matrix, group, list, 1,
                                      grouprec::Semantics::kAggregateVoting),
      u2 + u6, 1e-12);
}

}  // namespace
}  // namespace groupform
