// The §8 / DESIGN.md §10.3 determinism contract: for a fixed problem and
// seed, batch scoring, repeated runs, and every registered solver produce
// identical results at --threads 1, 2, and 8.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/formation.h"
#include "core/solver_registry.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "solvers/builtin.h"

namespace groupform {
namespace {

using core::FormationProblem;
using core::FormationResult;

FormationProblem Problem(const data::RatingMatrix& matrix) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = grouprec::Semantics::kLeastMisery;
  problem.aggregation = grouprec::Aggregation::kMin;
  problem.k = 3;
  problem.max_groups = 4;
  return problem;
}

/// Full structural equality: members, recommended lists (items and
/// scores, bit-exact), satisfactions, and the objective.
void ExpectIdenticalResults(const FormationResult& a,
                            const FormationResult& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.objective, b.objective);  // bitwise, not approximate
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].members, b.groups[g].members) << "group " << g;
    EXPECT_EQ(a.groups[g].satisfaction, b.groups[g].satisfaction);
    EXPECT_EQ(a.groups[g].recommendation.items,
              b.groups[g].recommendation.items);
  }
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    common::ThreadPool::SetDefaultThreadCount(0);
  }
};

// Table-driven matrix: 1/2/8 threads × every solver the registry knows.
// New solvers are pinned automatically the moment they register —
// nothing here names an algorithm. The instance stays tiny (9 users) so
// even the exhaustive "brute" reference completes at every cell.
TEST_F(ParallelDeterminismTest,
       EveryRegisteredSolverIdenticalAcrossThreadCounts) {
  solvers::EnsureBuiltinSolversRegistered();
  const auto matrix = data::GenerateLatentFactor(
      data::MovieLensLikeConfig(9, 8, /*seed=*/33));
  auto problem = Problem(matrix);
  problem.max_groups = 3;
  problem.k = 2;

  const std::vector<std::string> names =
      core::SolverRegistry::Global().Names();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    common::ThreadPool::SetDefaultThreadCount(1);
    const auto serial = eval::RunAlgorithmByName(name, problem, /*seed=*/77);
    ASSERT_TRUE(serial.ok()) << name << ": " << serial.status();
    for (const int threads : {2, 8}) {
      common::ThreadPool::SetDefaultThreadCount(threads);
      const auto parallel =
          eval::RunAlgorithmByName(name, problem, /*seed=*/77);
      ASSERT_TRUE(parallel.ok()) << name << ": " << parallel.status();
      SCOPED_TRACE(name + " at threads=" + std::to_string(threads));
      ExpectIdenticalResults(parallel->result, serial->result);
    }
  }
}

// The same registry-wide matrix on a constraint-bearing problem
// (DESIGN.md §17): solvers that accept the spec must stay byte-identical
// across thread counts, and solvers that reject it (capgreedy sees link
// pairs it does not support) must reject identically — the error path is
// part of the determinism contract too.
TEST_F(ParallelDeterminismTest,
       EveryRegisteredSolverDeterministicUnderConstraints) {
  solvers::EnsureBuiltinSolversRegistered();
  const auto matrix = data::GenerateLatentFactor(
      data::MovieLensLikeConfig(9, 8, /*seed=*/33));
  auto problem = Problem(matrix);
  problem.max_groups = 3;
  problem.k = 2;
  problem.constraints.min_group_size = 2;
  problem.constraints.max_group_size = 4;
  problem.constraints.must_link.push_back({0, 1});
  problem.constraints.cannot_link.push_back({2, 3});

  for (const std::string& name : core::SolverRegistry::Global().Names()) {
    common::ThreadPool::SetDefaultThreadCount(1);
    const auto serial = eval::RunAlgorithmByName(name, problem, /*seed=*/77);
    for (const int threads : {2, 8}) {
      common::ThreadPool::SetDefaultThreadCount(threads);
      const auto parallel =
          eval::RunAlgorithmByName(name, problem, /*seed=*/77);
      SCOPED_TRACE(name + " at threads=" + std::to_string(threads));
      ASSERT_EQ(parallel.ok(), serial.ok());
      if (!serial.ok()) {
        EXPECT_EQ(parallel.status().code(), serial.status().code());
        EXPECT_EQ(parallel.status().message(), serial.status().message());
        continue;
      }
      ExpectIdenticalResults(parallel->result, serial->result);
      EXPECT_EQ(parallel->result.floor_violations,
                serial->result.floor_violations);
      EXPECT_EQ(parallel->result.partial, serial->result.partial);
    }
  }
}

TEST_F(ParallelDeterminismTest, BatchScoringIdenticalAcrossThreadCounts) {
  const auto matrix = data::GenerateLatentFactor(
      data::MovieLensLikeConfig(60, 40, /*seed=*/5));
  const auto problem = Problem(matrix);
  const auto scorer = problem.MakeScorer();
  // An uneven partition, including an empty group.
  std::vector<std::vector<UserId>> groups(9);
  for (UserId u = 0; u < matrix.num_users(); ++u) {
    groups[static_cast<std::size_t>(u % 8)].push_back(u);
  }

  common::ThreadPool::SetDefaultThreadCount(1);
  const auto serial = core::ScoreGroups(problem, scorer, groups);
  for (const int threads : {2, 8}) {
    common::ThreadPool::SetDefaultThreadCount(threads);
    const auto parallel = core::ScoreGroups(problem, scorer, groups);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t g = 0; g < serial.size(); ++g) {
      EXPECT_EQ(parallel[g].satisfaction, serial[g].satisfaction)
          << "threads=" << threads << " group=" << g;
      EXPECT_EQ(parallel[g].list.items, serial[g].list.items);
    }
  }
}

TEST_F(ParallelDeterminismTest, RunRepeatedIdenticalAcrossThreadCounts) {
  const auto matrix = data::GenerateLatentFactor(
      data::MovieLensLikeConfig(40, 30, /*seed=*/9));
  const auto problem = Problem(matrix);
  // One deterministic solver, one seeded refiner, one seeded baseline —
  // dispatched by registry name, like every production surface.
  for (const std::string name : {"greedy", "localsearch", "veckmeans"}) {
    common::ThreadPool::SetDefaultThreadCount(1);
    const auto serial = eval::RunRepeated(name, problem, 4);
    ASSERT_TRUE(serial.ok()) << serial.status();
    for (const int threads : {2, 8}) {
      common::ThreadPool::SetDefaultThreadCount(threads);
      const auto parallel = eval::RunRepeated(name, problem, 4);
      ASSERT_TRUE(parallel.ok()) << parallel.status();
      EXPECT_EQ(parallel->mean_objective, serial->mean_objective)
          << name << " threads=" << threads;
      ExpectIdenticalResults(parallel->last_result, serial->last_result);
    }
  }
}

TEST_F(ParallelDeterminismTest,
       SingleRunIdenticalAcrossThreadCountsForSeededSolvers) {
  // Solvers that internally batch-score (baseline clusters, local search)
  // must not let the pool's thread count leak into their output.
  const auto matrix = data::GenerateLatentFactor(
      data::MovieLensLikeConfig(50, 30, /*seed=*/21));
  const auto problem = Problem(matrix);
  for (const std::string name : {"baseline", "localsearch", "sa"}) {
    common::ThreadPool::SetDefaultThreadCount(1);
    const auto serial = eval::RunAlgorithmByName(name, problem, /*seed=*/77);
    ASSERT_TRUE(serial.ok()) << serial.status();
    common::ThreadPool::SetDefaultThreadCount(8);
    const auto parallel =
        eval::RunAlgorithmByName(name, problem, /*seed=*/77);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ExpectIdenticalResults(parallel->result, serial->result);
  }
}

}  // namespace
}  // namespace groupform
