// The §6 extension measures: weighted-sum objective and NDCG objectives.
#include <gtest/gtest.h>

#include "core/greedy.h"
#include "data/paper_examples.h"
#include "data/synthetic.h"
#include "eval/weighted_objective.h"

namespace groupform {
namespace {

using core::FormationProblem;
using grouprec::Aggregation;
using grouprec::PositionWeighting;
using grouprec::Semantics;

FormationProblem Problem(const data::RatingMatrix& matrix,
                         Semantics semantics, Aggregation aggregation, int k,
                         int ell) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = semantics;
  problem.aggregation = aggregation;
  problem.k = k;
  problem.max_groups = ell;
  return problem;
}

TEST(WeightedSumObjective, UniformWeightsEqualPlainSumObjective) {
  const auto matrix = data::PaperExample1();
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kSum, 2, 3);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(eval::WeightedSumObjective(problem, *result,
                                         PositionWeighting::kUniform),
              result->objective, 1e-9);
}

TEST(WeightedSumObjective, DiscountingWeightsReduceTheValue) {
  const auto matrix = data::GenerateClusteredDense(60, 25, 6, 61);
  const auto problem = Problem(matrix, Semantics::kAggregateVoting,
                               Aggregation::kSum, 5, 6);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok());
  const double uniform = eval::WeightedSumObjective(
      problem, *result, PositionWeighting::kUniform);
  const double log_discounted = eval::WeightedSumObjective(
      problem, *result, PositionWeighting::kLogInverse);
  const double inverse = eval::WeightedSumObjective(
      problem, *result, PositionWeighting::kInversePosition);
  EXPECT_GT(uniform, log_discounted);
  EXPECT_GT(log_discounted, inverse);
  EXPECT_GT(inverse, 0.0);
}

TEST(NdcgObjective, FullySatisfiedGroupsScorePerfectNdcg) {
  const auto matrix = data::PaperExample1();
  // ell = 6 under LM: everyone in a singleton group with their own list.
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kMin, 2, 6);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok());
  // LM + singleton groups: every group's NDCG satisfaction is exactly 1.
  EXPECT_NEAR(eval::NdcgObjective(problem, *result),
              static_cast<double>(result->num_groups()), 1e-9);
  EXPECT_NEAR(eval::MeanUserNdcg(problem, *result), 1.0, 1e-9);
}

TEST(NdcgObjective, AvSemanticsSumMemberNdcgs) {
  const auto matrix = data::PaperExample2();
  const auto problem = Problem(matrix, Semantics::kAggregateVoting,
                               Aggregation::kMin, 2, 2);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok());
  // Sum-of-member-NDCGs over all groups is at most n and positive.
  const double objective = eval::NdcgObjective(problem, *result);
  EXPECT_GT(objective, 0.0);
  EXPECT_LE(objective, 6.0 + 1e-9);
}

TEST(MeanUserNdcg, ResidualMembersDragTheMeanBelowOne) {
  const auto matrix = data::GenerateClusteredDense(80, 30, 4, 63);
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kMin, 5, 3);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok());
  const double mean = eval::MeanUserNdcg(problem, *result);
  EXPECT_GT(mean, 0.0);
  EXPECT_LT(mean, 1.0 + 1e-9);
}

}  // namespace
}  // namespace groupform
