// The sweep engine's contracts (DESIGN.md §11): deterministic grid
// expansion, byte-identical table/JSON output at 1/2/8 threads, the
// unknown-solver NOT_FOUND path, failed-cell ERR rendering with a nonzero
// suite exit code, and DNF as the expected (non-failing) omission for
// over-budget cells.
#include "eval/sweep.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/solver_registry.h"
#include "data/synthetic.h"
#include "eval/sweep_json.h"
#include "solvers/builtin.h"

namespace groupform {
namespace {

using core::FormationProblem;
using core::FormationSolver;
using core::SolverOptions;
using eval::RunSweep;
using eval::SweepCellState;
using eval::SweepInstance;
using eval::SweepSpec;

/// Dense x-user instance; deterministic per x.
SweepInstance MakeInstance(int users) {
  SweepInstance instance(data::GenerateUniformDense(
      users, 5, data::RatingScale{1.0, 5.0}, /*seed=*/17));
  instance.problem.k = 2;
  instance.problem.max_groups = 3;
  return instance;
}

SweepSpec SmallSpec() {
  SweepSpec spec;
  spec.name = "test_sweep";
  spec.title = "engine test";
  spec.axis = "users";
  spec.xs = {6, 8};
  spec.make_instance = [](int x, int) { return MakeInstance(x); };
  spec.record_seconds = false;  // determinism-contract mode
  return spec;
}

class SweepTest : public ::testing::Test {
 protected:
  void SetUp() override { solvers::EnsureBuiltinSolversRegistered(); }
  void TearDown() override {
    eval::SetSweepSolverFilter({});
    common::ThreadPool::SetDefaultThreadCount(0);
  }
};

TEST_F(SweepTest, GridExpandsRowMajorWithOptionVariants) {
  SweepSpec spec = SmallSpec();
  // A SolverOptions grid: greedy × two (no-op) variants, then localsearch.
  spec.series = eval::CrossSeries(
      {"greedy"}, {{"v1", SolverOptions().Set("unused", "1")},
                   {"v2", SolverOptions().Set("unused", "2")}});
  eval::SweepSeries ls;
  ls.solver = "localsearch";
  spec.series.push_back(ls);
  spec.series_suffix = "-T";

  const auto result = RunSweep(spec);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->series.size(), 3u);
  EXPECT_EQ(result->series[0].label, "GRD/v1");
  EXPECT_EQ(result->series[1].label, "GRD/v2");
  EXPECT_EQ(result->series[2].label, "OPT*-T");  // derived label + suffix
  ASSERT_EQ(result->cells.size(), 6u);
  // Row-major: all series of xs[0], then xs[1].
  const int expected_x[] = {6, 6, 6, 8, 8, 8};
  const char* expected_solver[] = {"greedy", "greedy", "localsearch",
                                   "greedy", "greedy", "localsearch"};
  for (std::size_t i = 0; i < result->cells.size(); ++i) {
    EXPECT_EQ(result->cells[i].x, expected_x[i]) << i;
    EXPECT_EQ(result->cells[i].solver, expected_solver[i]) << i;
    EXPECT_EQ(result->cells[i].state, SweepCellState::kOk) << i;
    EXPECT_GT(result->cells[i].objective, 0.0) << i;
  }
  EXPECT_TRUE(result->all_ok());
}

TEST_F(SweepTest, RegistryDrivenSeriesHonourTheSolverFilter) {
  eval::SetSweepSolverFilter({"localsearch", "greedy"});
  SweepSpec spec = SmallSpec();
  spec.series_suffix = "-LM-MIN";
  const auto result = RunSweep(spec);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->series.size(), 2u);
  // Filter order is preserved verbatim (it is the user's column order).
  EXPECT_EQ(result->series[0].solver, "localsearch");
  EXPECT_EQ(result->series[0].label, "OPT*-LM-MIN");
  EXPECT_EQ(result->series[1].solver, "greedy");
  EXPECT_EQ(result->series[1].label, "GRD-LM-MIN");
}

TEST_F(SweepTest, RegistryDrivenSeriesDefaultToEveryRegisteredSolver) {
  SweepSpec spec = SmallSpec();
  spec.xs = {6};
  const auto result = RunSweep(spec);
  ASSERT_TRUE(result.ok()) << result.status();
  const auto names = core::SolverRegistry::Global().Names();
  ASSERT_EQ(result->series.size(), names.size());
  // Every registered solver appears — the acceptance criterion that a new
  // solver needs zero bench edits to join every figure.
  for (const auto& name : names) {
    bool found = false;
    for (const auto& series : result->series) {
      found = found || series.solver == name;
    }
    EXPECT_TRUE(found) << name;
  }
}

TEST_F(SweepTest, TableAndJsonByteIdenticalAcrossThreadCounts) {
  SweepSpec spec = SmallSpec();
  spec.xs = {6, 8, 10};
  spec.repetitions = 2;
  spec.series = eval::CrossSeries({"greedy", "localsearch"}, {{"", {}}});
  // SecondsMetric is wall-clock-tagged: with record_seconds off it
  // reports 0, so even a timing column stays byte-identical.
  spec.metrics = {eval::ObjectiveMetric(), eval::SecondsMetric()};
  ASSERT_TRUE(spec.parallel_rows);
  ASSERT_FALSE(spec.record_seconds);

  common::ThreadPool::SetDefaultThreadCount(1);
  const auto serial = RunSweep(spec);
  ASSERT_TRUE(serial.ok()) << serial.status();
  const std::string serial_table = eval::RenderSweepTable(*serial);
  const std::string serial_json = eval::SweepResultToJson(*serial);
  EXPECT_TRUE(serial->all_ok());

  for (const int threads : {2, 8}) {
    common::ThreadPool::SetDefaultThreadCount(threads);
    const auto parallel = RunSweep(spec);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(eval::RenderSweepTable(*parallel), serial_table)
        << "threads=" << threads;
    EXPECT_EQ(eval::SweepResultToJson(*parallel), serial_json)
        << "threads=" << threads;
  }
}

TEST_F(SweepTest, UnknownSolverIsErrNotFoundAndFailsTheSuite) {
  SweepSpec spec = SmallSpec();
  eval::SweepSeries bogus;
  bogus.solver = "no-such-solver";
  spec.series = {bogus};
  const auto result = RunSweep(spec);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->cells.size(), 2u);
  for (const auto& cell : result->cells) {
    EXPECT_EQ(cell.state, SweepCellState::kErr);
    EXPECT_EQ(cell.status.code(), common::StatusCode::kNotFound);
  }
  EXPECT_NE(eval::RenderSweepTable(*result).find("ERR(NOT_FOUND)"),
            std::string::npos);
  EXPECT_FALSE(result->all_ok());
  EXPECT_EQ(eval::SweepSuiteExitCode({*result}), 1);
}

/// A solver whose Solve always fails — the sentinel case the old benches
/// rendered as "-1.00" data.
class AlwaysFailsSolver : public FormationSolver {
 public:
  common::StatusOr<core::FormationResult> Solve(
      std::uint64_t) const override {
    return common::Status::Internal("deliberate test failure");
  }
  std::string name() const override { return "always-fails"; }
  std::string description() const override { return "test stub"; }
};

TEST_F(SweepTest, FailedCellsRenderErrWithCodeAndNonzeroExit) {
  auto& registry = core::SolverRegistry::Global();
  ASSERT_TRUE(registry
                  .Register("always-fails", "test stub",
                            [](const FormationProblem&,
                               const SolverOptions&) {
                              return common::StatusOr<
                                  std::unique_ptr<FormationSolver>>(
                                  std::make_unique<AlwaysFailsSolver>());
                            })
                  .ok());
  SweepSpec spec = SmallSpec();
  eval::SweepSeries failing;
  failing.solver = "always-fails";
  spec.series = {failing};
  const auto result = RunSweep(spec);
  registry.Unregister("always-fails");
  ASSERT_TRUE(result.ok()) << result.status();
  for (const auto& cell : result->cells) {
    EXPECT_EQ(cell.state, SweepCellState::kErr);
    EXPECT_EQ(cell.status.code(), common::StatusCode::kInternal);
    EXPECT_EQ(cell.objective, 0.0);  // no -1.00 masquerading as data
  }
  const std::string table = eval::RenderSweepTable(*result);
  EXPECT_NE(table.find("ERR(INTERNAL)"), std::string::npos);
  EXPECT_EQ(table.find("-1.00"), std::string::npos);
  EXPECT_EQ(eval::SweepSuiteExitCode({*result}), 1);
}

TEST_F(SweepTest, SolverBudgetIsDnfNotFailure) {
  SweepSpec spec = SmallSpec();
  spec.xs = {20};  // beyond subset DP's 16-user budget
  eval::SweepSeries exact;
  exact.solver = "exact";
  spec.series = {exact};
  const auto result = RunSweep(spec);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->cells.size(), 1u);
  EXPECT_EQ(result->cells[0].state, SweepCellState::kDnf);
  EXPECT_NE(eval::RenderSweepTable(*result).find("DNF"),
            std::string::npos);
  EXPECT_TRUE(result->all_ok());  // the paper's "omitted", not an error
  EXPECT_EQ(eval::SweepSuiteExitCode({*result}), 0);
}

TEST_F(SweepTest, SeriesCapsSkipCellsAsDnfWithoutRunning) {
  SweepSpec spec = SmallSpec();
  spec.xs = {6, 8};
  eval::SweepSeries capped;
  capped.solver = "greedy";
  capped.user_cap = 7;  // 6-user row runs, 8-user row is over budget
  spec.series = {capped};
  const auto result = RunSweep(spec);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->cells[0].state, SweepCellState::kOk);
  EXPECT_EQ(result->cells[1].state, SweepCellState::kDnf);
  EXPECT_EQ(result->cells[1].status.code(),
            common::StatusCode::kResourceExhausted);
  EXPECT_TRUE(result->all_ok());
}

TEST_F(SweepTest, SingleXTransposesToSeriesRows) {
  SweepSpec spec = SmallSpec();
  spec.xs = {8};
  spec.series = eval::CrossSeries({"greedy"}, {{"", {}}});
  spec.metrics = {eval::ObjectiveMetric(), eval::SecondsMetric()};
  const auto result = RunSweep(spec);
  ASSERT_TRUE(result.ok()) << result.status();
  const std::string table = eval::RenderSweepTable(*result);
  EXPECT_NE(table.find("| series |"), std::string::npos) << table;
  EXPECT_NE(table.find("objective"), std::string::npos);
  EXPECT_NE(table.find("seconds"), std::string::npos);
}

TEST_F(SweepTest, InstanceGenerationSharedAcrossRepetitionsByDefault) {
  int calls = 0;
  SweepSpec spec = SmallSpec();
  spec.xs = {6};
  spec.repetitions = 3;
  spec.series = eval::CrossSeries({"greedy"}, {{"", {}}});
  spec.make_instance = [&calls](int x, int) {
    ++calls;
    return MakeInstance(x);
  };
  ASSERT_TRUE(RunSweep(spec).ok());
  EXPECT_EQ(calls, 1);  // matrix built once per x, seeds vary per rep

  calls = 0;
  spec.resample_per_repetition = true;  // Table 4's random samples
  ASSERT_TRUE(RunSweep(spec).ok());
  EXPECT_EQ(calls, 3);
}

TEST_F(SweepTest, GfBenchRepsOverridesSpecRepetitions) {
  SweepSpec spec = SmallSpec();
  spec.repetitions = 3;
  spec.series = eval::CrossSeries({"greedy"}, {{"", {}}});
  setenv("GF_BENCH_REPS", "1", /*overwrite=*/1);
  const auto overridden = RunSweep(spec);
  unsetenv("GF_BENCH_REPS");
  ASSERT_TRUE(overridden.ok()) << overridden.status();
  EXPECT_EQ(overridden->repetitions, 1);
  const auto plain = RunSweep(spec);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->repetitions, 3);
}

TEST_F(SweepTest, MalformedSpecsAreInvalidArgument) {
  SweepSpec no_xs = SmallSpec();
  no_xs.xs.clear();
  EXPECT_EQ(RunSweep(no_xs).status().code(),
            common::StatusCode::kInvalidArgument);
  SweepSpec no_factory = SmallSpec();
  no_factory.make_instance = nullptr;
  EXPECT_EQ(RunSweep(no_factory).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(SweepJson, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(eval::JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(eval::JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(SweepJson, WriterProducesStructuredDocuments) {
  eval::JsonWriter w;
  w.BeginObject();
  w.Key("name").String("x");
  w.Key("xs").BeginArray().Int(1).Int(2).EndArray();
  w.Key("nested").BeginObject().Key("ok").Bool(true).EndObject();
  w.Key("value").Number(2.5);
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"x\",\"xs\":[1,2],\"nested\":{\"ok\":true},"
            "\"value\":2.5}");
}

TEST(SweepJson, SuiteEnvelopeListsTheFullRegistry) {
  solvers::EnsureBuiltinSolversRegistered();
  const std::string json = eval::SweepSuiteToJson("t", {});
  EXPECT_NE(json.find("\"schema\":\"groupform.bench/1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"registry\":["), std::string::npos);
  // The envelope reports every registered solver even when a sweep was
  // filtered — the perf tracker's view of what the build can run.
  for (const auto& name : core::SolverRegistry::Global().Names()) {
    EXPECT_NE(json.find("\"" + name + "\""), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace groupform
