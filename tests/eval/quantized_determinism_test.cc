// The DESIGN.md §14 quantization contract, across the whole registry and
// the thread matrix: for every registered solver at 1/2/8 threads,
//
//   (a) solving on the compact backend is bit-identical to solving on
//       its exact dequantization (ToMatrix) through the dense path — the
//       backend changes the storage, never the arithmetic; and
//   (b) on integer-grid instances (explicit feedback, the paper's
//       datasets) the quantizer round-trips exactly, so compact solves
//       are bit-identical to dense solves of the *original* matrix.
//
// Like the parallel-determinism matrix, nothing here names an algorithm:
// new solvers are pinned the moment they register.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/formation.h"
#include "core/solver_registry.h"
#include "data/compact_matrix.h"
#include "data/synthetic.h"
#include "solvers/builtin.h"

namespace groupform {
namespace {

using core::FormationProblem;
using core::FormationResult;

void ExpectIdenticalResults(const FormationResult& a,
                            const FormationResult& b) {
  EXPECT_EQ(a.objective, b.objective);  // bitwise, not approximate
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].members, b.groups[g].members) << "group " << g;
    EXPECT_EQ(a.groups[g].satisfaction, b.groups[g].satisfaction);
    EXPECT_EQ(a.groups[g].recommendation.items,
              b.groups[g].recommendation.items);
  }
}

FormationProblem BaseProblem() {
  FormationProblem problem;
  problem.semantics = grouprec::Semantics::kLeastMisery;
  problem.aggregation = grouprec::Aggregation::kMin;
  problem.k = 2;
  problem.max_groups = 3;
  return problem;
}

common::StatusOr<FormationResult> Solve(const std::string& solver,
                                        const FormationProblem& problem) {
  auto created = core::SolverRegistry::Global().Create(
      solver, problem, core::SolverOptions());
  if (!created.ok()) return created.status();
  return (*created)->Solve(7);
}

class QuantizedDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    common::ThreadPool::SetDefaultThreadCount(0);
  }
};

TEST_F(QuantizedDeterminismTest,
       CompactEqualsItsDequantizationForEverySolverAndThreadCount) {
  solvers::EnsureBuiltinSolversRegistered();
  // Fractional ratings (integer_ratings = false) so the quantization is
  // *not* a no-op: this pins the compact read path against the dense
  // read of the same grid values, the strongest form of (a).
  auto config = data::MovieLensLikeConfig(9, 8, /*seed=*/21);
  config.integer_ratings = false;
  const auto matrix = data::GenerateLatentFactor(config);
  const auto compact = data::CompactRatingMatrix::FromMatrix(matrix, 8);
  const data::RatingMatrix dequantized = compact.ToMatrix();

  FormationProblem on_compact = BaseProblem();
  on_compact.compact = &compact;
  FormationProblem on_dequantized = BaseProblem();
  on_dequantized.matrix = &dequantized;

  for (const std::string& name : core::SolverRegistry::Global().Names()) {
    for (const int threads : {1, 2, 8}) {
      common::ThreadPool::SetDefaultThreadCount(threads);
      const auto a = Solve(name, on_compact);
      const auto b = Solve(name, on_dequantized);
      ASSERT_TRUE(a.ok()) << name << ": " << a.status();
      ASSERT_TRUE(b.ok()) << name << ": " << b.status();
      SCOPED_TRACE(name + " @ " + std::to_string(threads) + " threads");
      ExpectIdenticalResults(*a, *b);
    }
  }
}

TEST_F(QuantizedDeterminismTest,
       IntegerInstancesSolveIdenticallyOnEveryBackend) {
  solvers::EnsureBuiltinSolversRegistered();
  // Integer-grid explicit feedback: quantization round-trips exactly, so
  // compact (at both widths) must equal dense on the ORIGINAL matrix.
  const auto matrix = data::GenerateLatentFactor(
      data::MovieLensLikeConfig(9, 8, /*seed=*/33));
  FormationProblem on_dense = BaseProblem();
  on_dense.matrix = &matrix;

  for (const int bits : {8, 16}) {
    const auto compact = data::CompactRatingMatrix::FromMatrix(matrix, bits);
    FormationProblem on_compact = BaseProblem();
    on_compact.compact = &compact;
    for (const std::string& name :
         core::SolverRegistry::Global().Names()) {
      for (const int threads : {1, 2, 8}) {
        common::ThreadPool::SetDefaultThreadCount(threads);
        const auto a = Solve(name, on_compact);
        const auto b = Solve(name, on_dense);
        ASSERT_TRUE(a.ok()) << name << ": " << a.status();
        ASSERT_TRUE(b.ok()) << name << ": " << b.status();
        SCOPED_TRACE(name + " q" + std::to_string(bits) + " @ " +
                     std::to_string(threads) + " threads");
        ExpectIdenticalResults(*a, *b);
      }
    }
  }
}

}  // namespace
}  // namespace groupform
