// Evaluation metrics: average group satisfaction, size summaries,
// per-user satisfaction, fully-satisfied fraction.
#include <gtest/gtest.h>

#include "core/greedy.h"
#include "data/paper_examples.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace groupform {
namespace {

using core::FormationProblem;
using grouprec::Aggregation;
using grouprec::Semantics;

FormationProblem Problem(const data::RatingMatrix& matrix,
                         Semantics semantics, Aggregation aggregation, int k,
                         int ell) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = semantics;
  problem.aggregation = aggregation;
  problem.k = k;
  problem.max_groups = ell;
  return problem;
}

TEST(AvgGroupSatisfaction, HandComputedOnExample2) {
  const auto matrix = data::PaperExample2();
  const auto problem = Problem(matrix, Semantics::kAggregateVoting,
                               Aggregation::kMin, 2, 2);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok());
  // Groups: {u3,u4} list (i2,i1) scores 10, 4 -> 14; {u1,u2,u5,u6} list
  // (i3,i2) scores 11, 9 -> 20. Average over 2 groups = 17.
  EXPECT_DOUBLE_EQ(eval::AvgGroupSatisfaction(problem, *result), 17.0);
}

TEST(GroupSizeSummary, MatchesGroupSizes) {
  const auto matrix = data::PaperExample1();
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kMin, 1, 3);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok());
  const auto summary = eval::GroupSizeSummary(*result);
  // Groups of sizes {2, 2, 2}.
  EXPECT_DOUBLE_EQ(summary.min, 2.0);
  EXPECT_DOUBLE_EQ(summary.median, 2.0);
  EXPECT_DOUBLE_EQ(summary.max, 2.0);
}

TEST(MeanPerUserSatisfaction, FullySatisfiedGroupsScoreTheirOwnRatings) {
  const auto matrix = data::PaperExample1();
  // ell large enough for every bucket to be its own group (k = 1).
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kMin, 1, 6);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok());
  // Every user gets their own top item: mean of (4,5,5,5,3,5)/1 = 27/6.
  EXPECT_NEAR(eval::MeanPerUserSatisfaction(problem, *result), 27.0 / 6.0,
              1e-9);
  EXPECT_DOUBLE_EQ(eval::FullySatisfiedFraction(problem, *result), 1.0);
}

TEST(FullySatisfiedFraction, DropsForTheResidualGroup) {
  const auto matrix = data::PaperExample1();
  const auto problem = Problem(matrix, Semantics::kLeastMisery,
                               Aggregation::kMin, 2, 3);
  const auto result = core::RunGreedy(problem);
  ASSERT_TRUE(result.ok());
  // Groups {u1}, {u2} are fully satisfied; the residual 4 users are not
  // guaranteed to be.
  const double fraction = eval::FullySatisfiedFraction(problem, *result);
  EXPECT_GE(fraction, 2.0 / 6.0);
  EXPECT_LT(fraction, 1.0);
}

TEST(Metrics, AvgSatisfactionGrowsWithMoreGroups) {
  // The paper's Figure 3(c) trend: more groups, higher satisfaction.
  const auto matrix = data::GenerateClusteredDense(120, 50, 10, 81);
  double previous = -1.0;
  for (int ell : {2, 6, 12}) {
    const auto problem = Problem(matrix, Semantics::kAggregateVoting,
                                 Aggregation::kMin, 5, ell);
    const auto result = core::RunGreedy(problem);
    ASSERT_TRUE(result.ok());
    const double value = result->objective;
    EXPECT_GE(value, previous - 1e-9) << "ell=" << ell;
    previous = value;
  }
}

}  // namespace
}  // namespace groupform
