// Experiment dispatcher: every algorithm kind runs, is timed, and repeats
// deterministically — and dispatch is pure registry lookup, so a solver
// registered at runtime is reachable without touching eval/ or tools/.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include "core/solver_registry.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "solvers/builtin.h"

namespace groupform {
namespace {

using core::FormationProblem;
using eval::AlgorithmKind;

constexpr AlgorithmKind kAllKinds[] = {
    AlgorithmKind::kGreedy,         AlgorithmKind::kBaseline,
    AlgorithmKind::kExactDp,        AlgorithmKind::kLocalSearch,
    AlgorithmKind::kSimulatedAnnealing,
    AlgorithmKind::kBranchAndBound, AlgorithmKind::kVectorKMeans};

FormationProblem SmallProblem(const data::RatingMatrix& matrix) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = grouprec::Semantics::kLeastMisery;
  problem.aggregation = grouprec::Aggregation::kMin;
  problem.k = 2;
  problem.max_groups = 3;
  return problem;
}

TEST(RunAlgorithm, EveryKindRunsOnASmallInstance) {
  const auto matrix = data::GenerateUniformDense(
      10, 6, data::RatingScale{1.0, 5.0}, 31);
  const auto problem = SmallProblem(matrix);
  for (const auto kind :
       {AlgorithmKind::kGreedy, AlgorithmKind::kBaseline,
        AlgorithmKind::kExactDp, AlgorithmKind::kLocalSearch,
        AlgorithmKind::kSimulatedAnnealing, AlgorithmKind::kBranchAndBound,
        AlgorithmKind::kVectorKMeans}) {
    const auto outcome = eval::RunAlgorithm(kind, problem);
    ASSERT_TRUE(outcome.ok()) << eval::AlgorithmKindToString(kind) << ": "
                              << outcome.status();
    EXPECT_GE(outcome->seconds, 0.0);
    EXPECT_TRUE(core::ValidatePartition(problem, outcome->result).ok());
  }
}

TEST(RunAlgorithm, OptimalDominatesGreedyAndLocalSearch) {
  const auto matrix = data::GenerateUniformDense(
      9, 5, data::RatingScale{1.0, 5.0}, 37);
  const auto problem = SmallProblem(matrix);
  const auto grd = eval::RunAlgorithm(AlgorithmKind::kGreedy, problem);
  const auto ls = eval::RunAlgorithm(AlgorithmKind::kLocalSearch, problem);
  const auto opt = eval::RunAlgorithm(AlgorithmKind::kExactDp, problem);
  ASSERT_TRUE(grd.ok());
  ASSERT_TRUE(ls.ok());
  ASSERT_TRUE(opt.ok());
  EXPECT_GE(opt->result.objective, grd->result.objective - 1e-9);
  EXPECT_GE(opt->result.objective, ls->result.objective - 1e-9);
  EXPECT_GE(ls->result.objective, grd->result.objective - 1e-9);
}

TEST(RunRepeated, AveragesOverRepetitions) {
  const auto matrix = data::GenerateUniformDense(
      12, 6, data::RatingScale{1.0, 5.0}, 41);
  const auto problem = SmallProblem(matrix);
  const auto repeated =
      eval::RunRepeated(AlgorithmKind::kGreedy, problem, 3);
  ASSERT_TRUE(repeated.ok());
  // Greedy is deterministic, so the mean equals any single run.
  const auto single = eval::RunAlgorithm(AlgorithmKind::kGreedy, problem);
  ASSERT_TRUE(single.ok());
  EXPECT_DOUBLE_EQ(repeated->mean_objective, single->result.objective);
  EXPECT_GT(repeated->mean_seconds, 0.0);
  EXPECT_FALSE(repeated->last_result.groups.empty());
}

TEST(AlgorithmKindToString, Names) {
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kGreedy), "GRD");
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kBaseline),
               "Baseline");
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kExactDp), "OPT");
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kLocalSearch),
               "OPT*");
  EXPECT_STREQ(
      eval::AlgorithmKindToString(AlgorithmKind::kSimulatedAnnealing),
      "SA");
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kBranchAndBound),
               "BNB");
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kVectorKMeans),
               "VecKMeans");
}

TEST(SolverRegistryCoverage, EveryAlgorithmKindResolvesToARegisteredSolver) {
  // Pins the enum and the registry together: a kind whose registry name is
  // missing would silently drift the CLI and the harness apart.
  solvers::EnsureBuiltinSolversRegistered();
  const auto& registry = core::SolverRegistry::Global();
  for (const auto kind : kAllKinds) {
    const char* name = eval::AlgorithmKindToRegistryName(kind);
    EXPECT_TRUE(registry.Contains(name))
        << eval::AlgorithmKindToString(kind) << " maps to unregistered '"
        << name << "'";
  }
}

TEST(SolverRegistryCoverage, RegistryNamesAreUniquePerKind) {
  std::set<std::string> names;
  for (const auto kind : kAllKinds) {
    EXPECT_TRUE(names.insert(eval::AlgorithmKindToRegistryName(kind)).second)
        << "duplicate registry name for "
        << eval::AlgorithmKindToString(kind);
  }
}

/// Stub proving the acceptance criterion of the registry refactor: a
/// solver registered from a test — no edits to eval/ or tools/ — is
/// runnable through the experiment harness, and shows up in the Names()
/// list the CLI builds its --algorithm choices and --help text from.
class EveryoneAloneSolver : public core::FormationSolver {
 public:
  explicit EveryoneAloneSolver(const FormationProblem& problem)
      : problem_(problem) {}

  common::StatusOr<core::FormationResult> Solve(
      std::uint64_t) const override {
    GF_RETURN_IF_ERROR(problem_.Validate());
    const auto scorer = problem_.MakeScorer();
    core::FormationResult result;
    result.algorithm = name();
    const std::int32_t n = problem_.matrix->num_users();
    // Everyone alone while groups remain, then the rest ride together.
    for (UserId u = 0; u < n; ++u) {
      if (result.num_groups() < problem_.max_groups) {
        result.groups.emplace_back();
      }
      result.groups.back().members.push_back(u);
    }
    for (auto& group : result.groups) {
      group.recommendation =
          core::ComputeGroupList(problem_, scorer, group.members);
      group.satisfaction = core::AggregateListSatisfaction(
          problem_, static_cast<int>(group.members.size()),
          group.recommendation);
      result.objective += group.satisfaction;
    }
    return result;
  }
  std::string name() const override { return "test-stub"; }
  std::string description() const override { return "test-only stub"; }

 private:
  FormationProblem problem_;
};

TEST(SolverRegistryCoverage, RuntimeRegisteredStubRunsViaTheHarness) {
  solvers::EnsureBuiltinSolversRegistered();
  auto& registry = core::SolverRegistry::Global();
  ASSERT_TRUE(registry
                  .Register("test-stub", "test-only stub",
                            [](const FormationProblem& problem,
                               const core::SolverOptions&) {
                              return common::StatusOr<
                                  std::unique_ptr<core::FormationSolver>>(
                                  std::make_unique<EveryoneAloneSolver>(
                                      problem));
                            })
                  .ok());

  const auto matrix = data::GenerateUniformDense(
      10, 6, data::RatingScale{1.0, 5.0}, 53);
  const auto problem = SmallProblem(matrix);

  // Reachable from the eval surface (RunAlgorithmByName + RunRepeated)...
  const auto outcome = eval::RunAlgorithmByName("test-stub", problem);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->result.algorithm, "test-stub");
  EXPECT_TRUE(core::ValidatePartition(problem, outcome->result).ok());
  const auto repeated = eval::RunRepeated("test-stub", problem, 2);
  ASSERT_TRUE(repeated.ok()) << repeated.status();
  EXPECT_DOUBLE_EQ(repeated->mean_objective, outcome->result.objective);

  // ...and from the list the CLI derives its --algorithm choices from.
  const auto names = registry.Names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-stub"),
            names.end());

  registry.Unregister("test-stub");
}

TEST(RunAlgorithmByName, UnknownSolverIsNotFoundAndListsChoices) {
  const auto matrix = data::GenerateUniformDense(
      6, 4, data::RatingScale{1.0, 5.0}, 59);
  const auto problem = SmallProblem(matrix);
  const auto outcome = eval::RunAlgorithmByName("no-such-solver", problem);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), common::StatusCode::kNotFound);
  EXPECT_NE(outcome.status().message().find("greedy"), std::string::npos);
}

TEST(RunAlgorithmByName, SolverOptionsReachTheFactory) {
  const auto matrix = data::GenerateUniformDense(
      12, 6, data::RatingScale{1.0, 5.0}, 61);
  const auto problem = SmallProblem(matrix);
  // Cap subset DP below the instance size: the option must flow through.
  const auto capped = eval::RunAlgorithmByName(
      "exact", problem, core::FormationSolver::kDefaultSeed,
      core::SolverOptions().Set("max_users", "4"));
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(),
            common::StatusCode::kResourceExhausted);
}

TEST(RunAlgorithm, SolverLadderOrdersAsExpected) {
  // On a small instance the quality ladder must hold: exact solvers at the
  // top, refiners at least at the greedy seed.
  const auto matrix = data::GenerateUniformDense(
      10, 5, data::RatingScale{1.0, 5.0}, 43);
  const auto problem = SmallProblem(matrix);
  const auto value = [&](AlgorithmKind kind) {
    const auto outcome = eval::RunAlgorithm(kind, problem);
    EXPECT_TRUE(outcome.ok()) << eval::AlgorithmKindToString(kind);
    return outcome.ok() ? outcome->result.objective : -1.0;
  };
  const double grd = value(AlgorithmKind::kGreedy);
  const double opt = value(AlgorithmKind::kExactDp);
  const double bnb = value(AlgorithmKind::kBranchAndBound);
  const double ls = value(AlgorithmKind::kLocalSearch);
  const double sa = value(AlgorithmKind::kSimulatedAnnealing);
  EXPECT_NEAR(bnb, opt, 1e-9);
  EXPECT_GE(ls, grd - 1e-9);
  EXPECT_GE(sa, grd - 1e-9);
  EXPECT_LE(ls, opt + 1e-9);
  EXPECT_LE(sa, opt + 1e-9);
}

}  // namespace
}  // namespace groupform
