// Experiment dispatcher: every algorithm kind runs, is timed, and repeats
// deterministically.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/experiment.h"

namespace groupform {
namespace {

using core::FormationProblem;
using eval::AlgorithmKind;

FormationProblem SmallProblem(const data::RatingMatrix& matrix) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = grouprec::Semantics::kLeastMisery;
  problem.aggregation = grouprec::Aggregation::kMin;
  problem.k = 2;
  problem.max_groups = 3;
  return problem;
}

TEST(RunAlgorithm, EveryKindRunsOnASmallInstance) {
  const auto matrix = data::GenerateUniformDense(
      10, 6, data::RatingScale{1.0, 5.0}, 31);
  const auto problem = SmallProblem(matrix);
  for (const auto kind :
       {AlgorithmKind::kGreedy, AlgorithmKind::kBaseline,
        AlgorithmKind::kExactDp, AlgorithmKind::kLocalSearch,
        AlgorithmKind::kSimulatedAnnealing, AlgorithmKind::kBranchAndBound,
        AlgorithmKind::kVectorKMeans}) {
    const auto outcome = eval::RunAlgorithm(kind, problem);
    ASSERT_TRUE(outcome.ok()) << eval::AlgorithmKindToString(kind) << ": "
                              << outcome.status();
    EXPECT_GE(outcome->seconds, 0.0);
    EXPECT_TRUE(core::ValidatePartition(problem, outcome->result).ok());
  }
}

TEST(RunAlgorithm, OptimalDominatesGreedyAndLocalSearch) {
  const auto matrix = data::GenerateUniformDense(
      9, 5, data::RatingScale{1.0, 5.0}, 37);
  const auto problem = SmallProblem(matrix);
  const auto grd = eval::RunAlgorithm(AlgorithmKind::kGreedy, problem);
  const auto ls = eval::RunAlgorithm(AlgorithmKind::kLocalSearch, problem);
  const auto opt = eval::RunAlgorithm(AlgorithmKind::kExactDp, problem);
  ASSERT_TRUE(grd.ok());
  ASSERT_TRUE(ls.ok());
  ASSERT_TRUE(opt.ok());
  EXPECT_GE(opt->result.objective, grd->result.objective - 1e-9);
  EXPECT_GE(opt->result.objective, ls->result.objective - 1e-9);
  EXPECT_GE(ls->result.objective, grd->result.objective - 1e-9);
}

TEST(RunRepeated, AveragesOverRepetitions) {
  const auto matrix = data::GenerateUniformDense(
      12, 6, data::RatingScale{1.0, 5.0}, 41);
  const auto problem = SmallProblem(matrix);
  const auto repeated =
      eval::RunRepeated(AlgorithmKind::kGreedy, problem, 3);
  ASSERT_TRUE(repeated.ok());
  // Greedy is deterministic, so the mean equals any single run.
  const auto single = eval::RunAlgorithm(AlgorithmKind::kGreedy, problem);
  ASSERT_TRUE(single.ok());
  EXPECT_DOUBLE_EQ(repeated->mean_objective, single->result.objective);
  EXPECT_GT(repeated->mean_seconds, 0.0);
  EXPECT_FALSE(repeated->last_result.groups.empty());
}

TEST(AlgorithmKindToString, Names) {
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kGreedy), "GRD");
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kBaseline),
               "Baseline");
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kExactDp), "OPT");
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kLocalSearch),
               "OPT*");
  EXPECT_STREQ(
      eval::AlgorithmKindToString(AlgorithmKind::kSimulatedAnnealing),
      "SA");
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kBranchAndBound),
               "BNB");
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kVectorKMeans),
               "VecKMeans");
}

TEST(RunAlgorithm, SolverLadderOrdersAsExpected) {
  // On a small instance the quality ladder must hold: exact solvers at the
  // top, refiners at least at the greedy seed.
  const auto matrix = data::GenerateUniformDense(
      10, 5, data::RatingScale{1.0, 5.0}, 43);
  const auto problem = SmallProblem(matrix);
  const auto value = [&](AlgorithmKind kind) {
    const auto outcome = eval::RunAlgorithm(kind, problem);
    EXPECT_TRUE(outcome.ok()) << eval::AlgorithmKindToString(kind);
    return outcome.ok() ? outcome->result.objective : -1.0;
  };
  const double grd = value(AlgorithmKind::kGreedy);
  const double opt = value(AlgorithmKind::kExactDp);
  const double bnb = value(AlgorithmKind::kBranchAndBound);
  const double ls = value(AlgorithmKind::kLocalSearch);
  const double sa = value(AlgorithmKind::kSimulatedAnnealing);
  EXPECT_NEAR(bnb, opt, 1e-9);
  EXPECT_GE(ls, grd - 1e-9);
  EXPECT_GE(sa, grd - 1e-9);
  EXPECT_LE(ls, opt + 1e-9);
  EXPECT_LE(sa, opt + 1e-9);
}

}  // namespace
}  // namespace groupform
