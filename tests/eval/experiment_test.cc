// Experiment dispatcher: every registered solver runs, is timed, and
// repeats deterministically — dispatch is pure registry lookup (by name,
// never by enum), so a solver registered at runtime is reachable without
// touching eval/ or tools/. AlgorithmKind survives only as the
// paper-label shim, pinned against the registry by the drift tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/solver_registry.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "solvers/builtin.h"

namespace groupform {
namespace {

using core::FormationProblem;
using eval::AlgorithmKind;

constexpr AlgorithmKind kAllKinds[] = {
    AlgorithmKind::kGreedy,         AlgorithmKind::kBaseline,
    AlgorithmKind::kExactDp,        AlgorithmKind::kLocalSearch,
    AlgorithmKind::kSimulatedAnnealing,
    AlgorithmKind::kBranchAndBound, AlgorithmKind::kVectorKMeans};

FormationProblem SmallProblem(const data::RatingMatrix& matrix) {
  FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = grouprec::Semantics::kLeastMisery;
  problem.aggregation = grouprec::Aggregation::kMin;
  problem.k = 2;
  problem.max_groups = 3;
  return problem;
}

TEST(RunAlgorithmByName, EveryRegisteredSolverRunsOnASmallInstance) {
  // Registry-driven, not enum-driven: a solver registered tomorrow is
  // covered here (and in every sweep) automatically.
  solvers::EnsureBuiltinSolversRegistered();
  const auto matrix = data::GenerateUniformDense(
      10, 6, data::RatingScale{1.0, 5.0}, 31);
  const auto problem = SmallProblem(matrix);
  const auto names = core::SolverRegistry::Global().Names();
  ASSERT_FALSE(names.empty());
  for (const auto& name : names) {
    const auto outcome = eval::RunAlgorithmByName(name, problem);
    ASSERT_TRUE(outcome.ok()) << name << ": " << outcome.status();
    EXPECT_GE(outcome->seconds, 0.0);
    EXPECT_TRUE(core::ValidatePartition(problem, outcome->result).ok())
        << name;
  }
}

TEST(RunAlgorithmByName, OptimalDominatesGreedyAndLocalSearch) {
  const auto matrix = data::GenerateUniformDense(
      9, 5, data::RatingScale{1.0, 5.0}, 37);
  const auto problem = SmallProblem(matrix);
  const auto grd = eval::RunAlgorithmByName("greedy", problem);
  const auto ls = eval::RunAlgorithmByName("localsearch", problem);
  const auto opt = eval::RunAlgorithmByName("exact", problem);
  ASSERT_TRUE(grd.ok());
  ASSERT_TRUE(ls.ok());
  ASSERT_TRUE(opt.ok());
  EXPECT_GE(opt->result.objective, grd->result.objective - 1e-9);
  EXPECT_GE(opt->result.objective, ls->result.objective - 1e-9);
  EXPECT_GE(ls->result.objective, grd->result.objective - 1e-9);
}

TEST(RunRepeated, AveragesOverRepetitions) {
  const auto matrix = data::GenerateUniformDense(
      12, 6, data::RatingScale{1.0, 5.0}, 41);
  const auto problem = SmallProblem(matrix);
  const auto repeated = eval::RunRepeated("greedy", problem, 3);
  ASSERT_TRUE(repeated.ok());
  // Greedy is deterministic, so the mean equals any single run.
  const auto single = eval::RunAlgorithmByName("greedy", problem);
  ASSERT_TRUE(single.ok());
  EXPECT_DOUBLE_EQ(repeated->mean_objective, single->result.objective);
  EXPECT_GT(repeated->mean_seconds, 0.0);
  EXPECT_FALSE(repeated->last_result.groups.empty());
}

TEST(AlgorithmKindToString, Names) {
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kGreedy), "GRD");
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kBaseline),
               "Baseline");
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kExactDp), "OPT");
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kLocalSearch),
               "OPT*");
  EXPECT_STREQ(
      eval::AlgorithmKindToString(AlgorithmKind::kSimulatedAnnealing),
      "SA");
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kBranchAndBound),
               "BNB");
  EXPECT_STREQ(eval::AlgorithmKindToString(AlgorithmKind::kVectorKMeans),
               "VecKMeans");
}

TEST(SolverRegistryCoverage, EveryAlgorithmKindResolvesToARegisteredSolver) {
  // Pins the enum and the registry together: a kind whose registry name is
  // missing would silently drift the paper labels from the solver set.
  solvers::EnsureBuiltinSolversRegistered();
  const auto& registry = core::SolverRegistry::Global();
  for (const auto kind : kAllKinds) {
    const char* name = eval::AlgorithmKindToRegistryName(kind);
    EXPECT_TRUE(registry.Contains(name))
        << eval::AlgorithmKindToString(kind) << " maps to unregistered '"
        << name << "'";
  }
}

TEST(SolverRegistryCoverage, DisplayLabelsMatchThePaperVocabulary) {
  // SolverDisplayLabel is the inverse of AlgorithmKindToRegistryName over
  // the enum's range: the sweep columns must read exactly like the paper.
  for (const auto kind : kAllKinds) {
    EXPECT_EQ(
        eval::SolverDisplayLabel(eval::AlgorithmKindToRegistryName(kind)),
        eval::AlgorithmKindToString(kind))
        << eval::AlgorithmKindToString(kind);
  }
  // Unknown names display as themselves (runtime-registered solvers).
  EXPECT_EQ(eval::SolverDisplayLabel("my-new-solver"), "my-new-solver");
}

TEST(SolverRegistryCoverage, DisplayOrderIsPaperFirstThenAlphabetical) {
  const auto ordered = eval::OrderSolversForDisplay(
      {"zeta-solver", "localsearch", "greedy", "alpha-solver", "baseline"});
  const std::vector<std::string> expected = {
      "greedy", "baseline", "localsearch", "alpha-solver", "zeta-solver"};
  EXPECT_EQ(ordered, expected);
}

TEST(SolverRegistryCoverage, RegistryNamesAreUniquePerKind) {
  std::set<std::string> names;
  for (const auto kind : kAllKinds) {
    EXPECT_TRUE(names.insert(eval::AlgorithmKindToRegistryName(kind)).second)
        << "duplicate registry name for "
        << eval::AlgorithmKindToString(kind);
  }
}

/// Stub proving the acceptance criterion of the registry refactor: a
/// solver registered from a test — no edits to eval/ or tools/ — is
/// runnable through the experiment harness, and shows up in the Names()
/// list the CLI builds its --algorithm choices and --help text from.
class EveryoneAloneSolver : public core::FormationSolver {
 public:
  explicit EveryoneAloneSolver(const FormationProblem& problem)
      : problem_(problem) {}

  common::StatusOr<core::FormationResult> Solve(
      std::uint64_t) const override {
    GF_RETURN_IF_ERROR(problem_.Validate());
    const auto scorer = problem_.MakeScorer();
    core::FormationResult result;
    result.algorithm = name();
    const std::int32_t n = problem_.matrix->num_users();
    // Everyone alone while groups remain, then the rest ride together.
    for (UserId u = 0; u < n; ++u) {
      if (result.num_groups() < problem_.max_groups) {
        result.groups.emplace_back();
      }
      result.groups.back().members.push_back(u);
    }
    for (auto& group : result.groups) {
      group.recommendation =
          core::ComputeGroupList(problem_, scorer, group.members);
      group.satisfaction = core::AggregateListSatisfaction(
          problem_, static_cast<int>(group.members.size()),
          group.recommendation);
      result.objective += group.satisfaction;
    }
    return result;
  }
  std::string name() const override { return "test-stub"; }
  std::string description() const override { return "test-only stub"; }

 private:
  FormationProblem problem_;
};

TEST(SolverRegistryCoverage, RuntimeRegisteredStubRunsViaTheHarness) {
  solvers::EnsureBuiltinSolversRegistered();
  auto& registry = core::SolverRegistry::Global();
  ASSERT_TRUE(registry
                  .Register("test-stub", "test-only stub",
                            [](const FormationProblem& problem,
                               const core::SolverOptions&) {
                              return common::StatusOr<
                                  std::unique_ptr<core::FormationSolver>>(
                                  std::make_unique<EveryoneAloneSolver>(
                                      problem));
                            })
                  .ok());

  const auto matrix = data::GenerateUniformDense(
      10, 6, data::RatingScale{1.0, 5.0}, 53);
  const auto problem = SmallProblem(matrix);

  // Reachable from the eval surface (RunAlgorithmByName + RunRepeated)...
  const auto outcome = eval::RunAlgorithmByName("test-stub", problem);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->result.algorithm, "test-stub");
  EXPECT_TRUE(core::ValidatePartition(problem, outcome->result).ok());
  const auto repeated = eval::RunRepeated("test-stub", problem, 2);
  ASSERT_TRUE(repeated.ok()) << repeated.status();
  EXPECT_DOUBLE_EQ(repeated->mean_objective, outcome->result.objective);

  // ...and from the list the CLI derives its --algorithm choices from.
  const auto names = registry.Names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-stub"),
            names.end());

  registry.Unregister("test-stub");
}

TEST(RunAlgorithmByName, UnknownSolverIsNotFoundAndListsChoices) {
  const auto matrix = data::GenerateUniformDense(
      6, 4, data::RatingScale{1.0, 5.0}, 59);
  const auto problem = SmallProblem(matrix);
  const auto outcome = eval::RunAlgorithmByName("no-such-solver", problem);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), common::StatusCode::kNotFound);
  EXPECT_NE(outcome.status().message().find("greedy"), std::string::npos);
}

TEST(RunAlgorithmByName, SolverOptionsReachTheFactory) {
  const auto matrix = data::GenerateUniformDense(
      12, 6, data::RatingScale{1.0, 5.0}, 61);
  const auto problem = SmallProblem(matrix);
  // Cap subset DP below the instance size: the option must flow through.
  const auto capped = eval::RunAlgorithmByName(
      "exact", problem, core::FormationSolver::kDefaultSeed,
      core::SolverOptions().Set("max_users", "4"));
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(),
            common::StatusCode::kResourceExhausted);
}

TEST(RunAlgorithmByName, SolverLadderOrdersAsExpected) {
  // On a small instance the quality ladder must hold: exact solvers at the
  // top, refiners at least at the greedy seed.
  const auto matrix = data::GenerateUniformDense(
      10, 5, data::RatingScale{1.0, 5.0}, 43);
  const auto problem = SmallProblem(matrix);
  const auto value = [&](const std::string& name) {
    const auto outcome = eval::RunAlgorithmByName(name, problem);
    EXPECT_TRUE(outcome.ok()) << name;
    return outcome.ok() ? outcome->result.objective : -1.0;
  };
  const double grd = value("greedy");
  const double opt = value("exact");
  const double bnb = value("bnb");
  const double ls = value("localsearch");
  const double sa = value("sa");
  EXPECT_NEAR(bnb, opt, 1e-9);
  EXPECT_GE(ls, grd - 1e-9);
  EXPECT_GE(sa, grd - 1e-9);
  EXPECT_LE(ls, opt + 1e-9);
  EXPECT_LE(sa, opt + 1e-9);
}

}  // namespace
}  // namespace groupform
