// Music listening rooms (FlyTrap-style, paper §1): sparse explicit
// feedback is densified with a trained predictor first — the paper's
// "standard pre-processing for collaborative filtering and rating
// prediction" — and groups are then formed on the densified preferences.
// This example exercises the full pipeline: synthetic sparse data ->
// matrix-factorisation training -> prediction densification -> group
// formation -> per-room playlists.
//
// Run: ./build/examples/music_sessions
#include <cstdio>

#include "core/formation.h"
#include "core/greedy.h"
#include "data/dataset_stats.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "grouprec/semantics.h"
#include "recsys/matrix_factorization.h"
#include "recsys/predictor.h"

int main() {
  using namespace groupform;

  // 2000 listeners, 300 songs, each listener rated only 15-40 songs.
  auto config = data::YahooMusicLikeConfig(2000, 300, /*seed=*/11);
  config.min_ratings_per_user = 15;
  config.max_ratings_per_user = 40;
  const auto sparse = data::GenerateLatentFactor(config);

  // Train the predictor and validate it on a holdout before trusting it.
  const auto split = recsys::SplitHoldout(sparse, 0.15, /*seed=*/3);
  recsys::MfPredictor::Options mf_options;
  mf_options.num_epochs = 25;
  const recsys::MfPredictor predictor(split.train, mf_options);
  std::printf("MF predictor: train RMSE %.3f, holdout RMSE %.3f\n",
              predictor.final_train_rmse(),
              recsys::Rmse(predictor, split.test));

  // Densify: predicted ratings for the 100 most popular songs.
  const auto dense = recsys::DensifyWithPredictions(sparse, predictor, 100);
  std::printf("densified: %lld -> %lld ratings\n",
              static_cast<long long>(sparse.num_ratings()),
              static_cast<long long>(dense.num_ratings()));

  // Form 20 listening rooms, playlist of 8 songs each, least misery so no
  // room member suffers through a hated track.
  core::FormationProblem problem;
  problem.matrix = &dense;
  problem.semantics = grouprec::Semantics::kLeastMisery;
  problem.aggregation = grouprec::Aggregation::kMin;
  problem.k = 8;
  problem.max_groups = 20;
  problem.candidate_depth = 16;

  const auto rooms = core::RunGreedy(problem);
  if (!rooms.ok()) {
    std::fprintf(stderr, "%s\n", rooms.status().ToString().c_str());
    return 1;
  }
  std::printf("\nformed %d rooms, objective %.1f\n", rooms->num_groups(),
              rooms->objective);
  std::printf("mean listener rating of their room's playlist: %.2f / 5\n",
              eval::MeanPerUserSatisfaction(problem, *rooms));

  // Print the three largest rooms' playlists.
  for (int printed = 0; printed < 3 && printed < rooms->num_groups();
       ++printed) {
    const auto& room = rooms->groups[static_cast<std::size_t>(printed)];
    std::printf("room %d (%zu listeners): ", printed, room.members.size());
    for (const auto& si : room.recommendation.items) {
      std::printf("song-%d ", si.item);
    }
    std::printf("\n");
  }
  return 0;
}
