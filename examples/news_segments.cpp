// News segmentation (paper §1): an online news agency segments a large
// reader base into groups and serves each segment a common top-10 list.
// Least-misery semantics keeps every reader in a segment reasonably happy
// with every served story.
//
// Run: ./build/examples/news_segments
#include <cstdio>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/formation.h"
#include "core/greedy.h"
#include "data/dataset_stats.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "grouprec/semantics.h"

int main() {
  using namespace groupform;

  // 20k readers, 250 articles, sparse histories; the front-page head is
  // seen (and rated) by everyone.
  auto config = data::MovieLensLikeConfig(20'000, 250, /*seed=*/7);
  config.min_ratings_per_user = 15;
  config.max_ratings_per_user = 60;
  config.always_rated_head = 12;
  config.popularity_skew = 1.2;
  const auto matrix = data::GenerateLatentFactor(config);
  std::printf("%s\n",
              data::StatsToString(data::ComputeStats(matrix, "news-readers"))
                  .c_str());

  // Max aggregation: a segment is anchored on the story its readers agree
  // is the best; the rest of the top-10 fills the page. Max keys (shared
  // favourite story and rating) give segments of real size, where exact
  // top-10 sequence matching would shatter 20k diverse readers into
  // singletons.
  core::FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = grouprec::Semantics::kLeastMisery;
  problem.aggregation = grouprec::Aggregation::kMax;
  problem.k = 10;
  problem.max_groups = 100;       // one hundred reader segments
  problem.candidate_depth = 20;   // truncated residual candidates at scale

  common::Stopwatch stopwatch;
  const auto result = core::RunGreedy(problem);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const double seconds = stopwatch.ElapsedSeconds();

  std::printf("Formed %d segments of 20k readers in %.2f s\n",
              result->num_groups(), seconds);
  std::printf("objective (LM/Min): %.1f\n", result->objective);
  std::printf("fully satisfied readers: %.1f%%\n",
              100.0 * eval::FullySatisfiedFraction(problem, *result));
  const auto sizes = eval::GroupSizeSummary(*result);
  std::printf("segment sizes: min=%.0f q1=%.0f median=%.0f q3=%.0f "
              "max=%.0f\n",
              sizes.min, sizes.q1, sizes.median, sizes.q3, sizes.max);
  return 0;
}
