// Quickstart: run every greedy group-formation algorithm on the paper's
// 6-user running example (Table 1) and compare with the provable optimum.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/formation.h"
#include "core/greedy.h"
#include "data/paper_examples.h"
#include "exact/subset_dp.h"
#include "grouprec/semantics.h"

int main() {
  using namespace groupform;

  const data::RatingMatrix matrix = data::PaperExample1();
  std::printf("Population: %d users, %d items (paper Table 1)\n\n",
              matrix.num_users(), matrix.num_items());

  for (const auto semantics : {grouprec::Semantics::kLeastMisery,
                               grouprec::Semantics::kAggregateVoting}) {
    for (const auto aggregation :
         {grouprec::Aggregation::kMax, grouprec::Aggregation::kMin,
          grouprec::Aggregation::kSum}) {
      core::FormationProblem problem;
      problem.matrix = &matrix;
      problem.semantics = semantics;
      problem.aggregation = aggregation;
      problem.k = 2;
      problem.max_groups = 3;

      const auto greedy = core::RunGreedy(problem);
      if (!greedy.ok()) {
        std::fprintf(stderr, "greedy failed: %s\n",
                     greedy.status().ToString().c_str());
        return 1;
      }
      const auto optimal = exact::SubsetDpSolver(problem).Run();
      if (!optimal.ok()) {
        std::fprintf(stderr, "optimal failed: %s\n",
                     optimal.status().ToString().c_str());
        return 1;
      }
      std::printf("== %s ==\n", problem.ToString().c_str());
      std::printf("%s", greedy->ToString().c_str());
      std::printf("  optimum (subset DP): %.2f  (greedy gap: %.2f)\n\n",
                  optimal->objective,
                  optimal->objective - greedy->objective);
    }
  }
  return 0;
}
