// Quickstart: run every greedy group-formation algorithm on the paper's
// 6-user running example (Table 1), compare with the provable optimum,
// then sweep every registered solver through the SolverRegistry.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "core/formation.h"
#include "core/greedy.h"
#include "core/solver_registry.h"
#include "data/paper_examples.h"
#include "exact/subset_dp.h"
#include "grouprec/semantics.h"
#include "solvers/builtin.h"

int main() {
  using namespace groupform;

  const data::RatingMatrix matrix = data::PaperExample1();
  std::printf("Population: %d users, %d items (paper Table 1)\n\n",
              matrix.num_users(), matrix.num_items());

  for (const auto semantics : {grouprec::Semantics::kLeastMisery,
                               grouprec::Semantics::kAggregateVoting}) {
    for (const auto aggregation :
         {grouprec::Aggregation::kMax, grouprec::Aggregation::kMin,
          grouprec::Aggregation::kSum}) {
      core::FormationProblem problem;
      problem.matrix = &matrix;
      problem.semantics = semantics;
      problem.aggregation = aggregation;
      problem.k = 2;
      problem.max_groups = 3;

      const auto greedy = core::RunGreedy(problem);
      if (!greedy.ok()) {
        std::fprintf(stderr, "greedy failed: %s\n",
                     greedy.status().ToString().c_str());
        return 1;
      }
      const auto optimal = exact::SubsetDpSolver(problem).Run();
      if (!optimal.ok()) {
        std::fprintf(stderr, "optimal failed: %s\n",
                     optimal.status().ToString().c_str());
        return 1;
      }
      std::printf("== %s ==\n", problem.ToString().c_str());
      std::printf("%s", greedy->ToString().c_str());
      std::printf("  optimum (subset DP): %.2f  (greedy gap: %.2f)\n\n",
                  optimal->objective,
                  optimal->objective - greedy->objective);
    }
  }

  // Every solver family through the one registry the CLI and the
  // experiment harness also dispatch through (DESIGN.md §10.1).
  solvers::EnsureBuiltinSolversRegistered();
  core::FormationProblem problem;
  problem.matrix = &matrix;
  problem.k = 2;
  problem.max_groups = 3;
  std::printf("== every registered solver on %s ==\n",
              problem.ToString().c_str());
  auto& registry = core::SolverRegistry::Global();
  for (const std::string& name : registry.Names()) {
    const auto solver = registry.Create(name, problem);
    if (!solver.ok()) continue;
    const auto result = (*solver)->Solve();
    if (!result.ok()) {
      std::printf("  %-12s %s\n", name.c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("  %-12s objective %.2f in %d groups  (%s)\n", name.c_str(),
                result->objective, result->num_groups(),
                result->algorithm.c_str());
  }
  return 0;
}
