// Overlapping groups (the paper's §9 future-work direction): after the
// disjoint formation, users may additionally join other groups whose
// recommended lists they already like. A book-club platform is the
// natural fit — a reader belongs to a home club but can follow a second
// club's reading list when it matches their taste.
//
// Run: ./build/examples/overlapping_groups
#include <cstdio>

#include "core/formation.h"
#include "core/greedy.h"
#include "core/overlap.h"
#include "data/synthetic.h"
#include "eval/weighted_objective.h"
#include "grouprec/semantics.h"

int main() {
  using namespace groupform;

  // 400 readers, 120 books, clustered tastes.
  data::SyntheticConfig config;
  config.num_users = 400;
  config.num_items = 120;
  config.num_taste_clusters = 12;
  config.cluster_spread = 0.25;
  config.min_ratings_per_user = 20;
  config.max_ratings_per_user = 50;
  config.always_rated_head = 8;
  config.seed = 404;
  const auto matrix = data::GenerateLatentFactor(config);

  core::FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = grouprec::Semantics::kLeastMisery;
  problem.aggregation = grouprec::Aggregation::kMax;
  problem.k = 6;           // six books per club per season
  problem.max_groups = 12;

  const auto clubs = core::RunGreedy(problem);
  if (!clubs.ok()) {
    std::fprintf(stderr, "%s\n", clubs.status().ToString().c_str());
    return 1;
  }
  std::printf("disjoint clubs: %d, objective %.1f, mean reader NDCG@%d "
              "%.3f\n",
              clubs->num_groups(), clubs->objective, problem.k,
              eval::MeanUserNdcg(problem, *clubs));

  for (const double threshold : {0.9, 0.75, 0.5}) {
    core::OverlapOptions options;
    options.max_extra_memberships = 2;
    options.min_ndcg = threshold;
    const auto overlap = core::ExpandWithOverlaps(problem, *clubs, options);
    if (!overlap.ok()) {
      std::fprintf(stderr, "%s\n", overlap.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "overlap threshold %.2f: %.2f memberships/reader, best NDCG "
        "%.3f, %lld readers improved by a second club\n",
        threshold, overlap->mean_memberships, overlap->mean_best_ndcg,
        static_cast<long long>(overlap->users_improved));
  }
  return 0;
}
