// Travel planning (the paper's §1 motivating application): a travel agency
// has hundreds of registered travellers with preferences over a city's
// points of interest, wants to support 25 tour groups, and designs one
// plan of k POIs per group. Group formation decides who travels together;
// the group recommender decides each group's itinerary. Least-misery
// semantics fits tours: every stop must be at least acceptable to every
// traveller on the bus, and the plan's value is summed over its stops.
//
// Run: ./build/examples/travel_planning
#include <cstdio>

#include "baseline/cluster_baseline.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/formation.h"
#include "core/greedy.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "grouprec/semantics.h"

int main() {
  using namespace groupform;

  // 600 registered travellers, 80 POIs, preferences from taste clusters
  // (families, backpackers, museum-goers, ...). Everyone has an opinion on
  // the famous head attractions; the tail is rated by enthusiasts only.
  data::SyntheticConfig config;
  config.num_users = 600;
  config.num_items = 80;
  config.num_taste_clusters = 25;
  config.cluster_spread = 0.2;
  config.noise_stddev = 0.3;
  config.popularity_skew = 1.3;
  config.min_ratings_per_user = 15;
  config.max_ratings_per_user = 40;
  config.always_rated_head = 10;
  config.seed = 2015;
  const auto matrix = data::GenerateLatentFactor(config);

  core::FormationProblem problem;
  problem.matrix = &matrix;
  problem.semantics = grouprec::Semantics::kLeastMisery;
  problem.aggregation = grouprec::Aggregation::kSum;
  problem.k = 7;          // 5-10 POIs per plan, per the paper
  problem.max_groups = 25;

  const auto grd = core::RunGreedy(problem);
  if (!grd.ok()) {
    std::fprintf(stderr, "%s\n", grd.status().ToString().c_str());
    return 1;
  }
  const auto base = baseline::RunBaseline(problem);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }

  std::printf("Travel planning: %s\n\n", problem.ToString().c_str());
  common::TablePrinter table(
      {"method", "objective", "avg group satisfaction", "mean user rating",
       "groups"});
  for (const auto* result : {&*grd, &*base}) {
    table.AddRow({result->algorithm,
                  common::StrFormat("%.1f", result->objective),
                  common::StrFormat("%.1f",
                                    eval::AvgGroupSatisfaction(problem,
                                                               *result)),
                  common::StrFormat(
                      "%.2f", eval::MeanPerUserSatisfaction(problem,
                                                            *result)),
                  common::StrFormat("%d", result->num_groups())});
  }
  table.Print();

  // Show one itinerary.
  const auto& g0 = grd->groups.front();
  std::printf("\nSample plan for a group of %zu travellers (POIs): ",
              g0.members.size());
  for (const auto& si : g0.recommendation.items) {
    std::printf("POI-%d ", si.item);
  }
  std::printf("\n");
  return 0;
}
