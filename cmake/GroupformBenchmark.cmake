# Provides benchmark::benchmark (google-benchmark).
#
# Resolution order (mirrors GroupformGTest.cmake):
#   1. A system-installed google-benchmark (Debian/Fedora package, vcpkg,
#      ...), so offline builds work against the distro package.
#   2. FetchContent from the upstream repository (needs network at
#      configure time; only attempted when no system package is found).
#
# The explicit find_package-then-FetchContent dance (rather than
# FetchContent's FIND_PACKAGE_ARGS) keeps this working on CMake 3.21-3.23.
find_package(benchmark QUIET)

if(NOT benchmark_FOUND)
  include(FetchContent)
  # Only the library: no upstream tests, and no requirement that GTest be
  # resolvable from the benchmark build.
  set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_GTEST_TESTS OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_WERROR OFF CACHE BOOL "" FORCE)
  FetchContent_Declare(
    googlebenchmark
    GIT_REPOSITORY https://github.com/google/benchmark.git
    GIT_TAG v1.8.3)
  FetchContent_MakeAvailable(googlebenchmark)
endif()
