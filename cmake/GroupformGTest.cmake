# Provides GTest::gtest and GTest::gtest_main.
#
# Resolution order:
#   1. A system-installed GoogleTest (Debian/Fedora package, vcpkg, ...),
#      so offline builds work against the distro package.
#   2. FetchContent from the upstream repository (needs network at
#      configure time; only attempted when no system package is found).
#
# The explicit find_package-then-FetchContent dance (rather than
# FetchContent's FIND_PACKAGE_ARGS) keeps this working on CMake 3.21-3.23.
find_package(GTest QUIET)

if(NOT GTest_FOUND)
  include(FetchContent)
  FetchContent_Declare(
    googletest
    GIT_REPOSITORY https://github.com/google/googletest.git
    GIT_TAG v1.14.0)
  FetchContent_MakeAvailable(googletest)
endif()
