// groupform_brokerd — multi-process sharded serving front-end (DESIGN.md
// §16, docs/PROTOCOL.md "Broker transparency").
//
// Spawns and supervises a fleet of groupform_serverd worker processes on
// ephemeral loopback ports, then serves the ordinary wire protocol —
// newline-JSON and GFB1 binary, single documents and batch envelopes —
// routing every request to the fleet:
//
//   --mode affinity   consistent-hash each request's instance cache key
//                     to one worker and forward verbatim (the default;
//                     splits the instance-cache working set N ways)
//   --mode scatter    additionally split eligible solves (greedy,
//                     non-delta, candidate_depth 0) across *all* workers
//                     by user range and item range, gathering partials
//                     into the exact single-process result
//
// Responses are byte-identical to a single groupform_serverd at every
// fleet size, worker thread count, and wire — the fleet equivalence
// tests pin this. A worker that dies answers its in-flight request with
// ERR(UNAVAILABLE) after one bounded-backoff retry; the stream never
// hangs.
//
//   groupform_brokerd --workers 3               # TCP on 127.0.0.1:4018
//   groupform_brokerd --workers 2 --mode scatter --port 0
//   groupform_brokerd --workers 2 --pipe < reqs.jsonl
//
// Flags:
//   --workers N         worker processes to spawn           (default 2)
//   --mode M            affinity | scatter                  (affinity)
//   --serverd PATH      worker binary (default: sibling groupform_serverd)
//   --worker-threads N  per-worker thread pool size (0 = worker default)
//   --worker-cache-mb N per-worker instance cache budget (-1 = default)
//   --worker-wire M     json | binary: wire of the broker→worker hop
//                       (binary)
//   --retries N         per-request re-attempts after a failed worker
//                       call                                (1)
//   --backoff-ms N      pause before each re-attempt        (50)
//   --pipe              serve stdin→stdout instead of TCP
//   --port N            TCP port, 0 = ephemeral  (GF_SERVE_PORT, 4018)
//   --port-file PATH    write the bound TCP port to PATH
//   --max-inflight N    pipelining window        (GF_SERVE_MAX_INFLIGHT)
//   --credits N         binary-wire credit window (GF_SERVE_CREDITS)
//   --wire MODE         auto | json | binary client wires (GF_SERVE_WIRE)
//   --cache-mb N        broker-local cache budget (scatter mode loads
//                       instances locally for metrics)  (GF_SERVE_CACHE_MB)
//   --threads N         broker pool size (GF_THREADS)
//
// SIGINT/SIGTERM stop the listener, drain in-flight requests, and tear
// the worker fleet down (SIGTERM + waitpid).
#include <csignal>
#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/thread_pool.h"
#include "fleet/broker.h"
#include "fleet/supervisor.h"
#include "serve/server.h"
#include "solvers/builtin.h"

namespace {

using namespace groupform;

serve::TcpServer* g_server = nullptr;

void HandleStopSignal(int) {
  if (g_server != nullptr) g_server->Shutdown();
}

int RealMain(int argc, char** argv) {
  solvers::EnsureBuiltinSolversRegistered();
  common::FlagParser flags;
  if (const auto status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  if (flags.GetBool("help", false)) {
    std::printf(
        "groupform_brokerd — broker fronting a groupform_serverd fleet\n"
        "(same wire protocol as a single server, docs/PROTOCOL.md)\n\n"
        "  --workers N         worker processes (default 2)\n"
        "  --mode M            affinity | scatter (default affinity)\n"
        "  --serverd PATH      worker binary (default: sibling)\n"
        "  --worker-threads N  per-worker pool size (0 = worker default)\n"
        "  --worker-cache-mb N per-worker cache budget (-1 = default)\n"
        "  --worker-wire M     json | binary broker→worker hop (binary)\n"
        "  --retries N         re-attempts per failed worker call (1)\n"
        "  --backoff-ms N      pause before each re-attempt (50)\n"
        "  --pipe              stdin/stdout mode (exit at EOF)\n"
        "  --port N            TCP port, 0 = ephemeral (GF_SERVE_PORT)\n"
        "  --port-file PATH    write the bound TCP port to PATH\n"
        "  --max-inflight N    pipelining window (GF_SERVE_MAX_INFLIGHT)\n"
        "  --credits N         credit window (GF_SERVE_CREDITS)\n"
        "  --wire MODE         auto|json|binary client wires\n"
        "  --cache-mb N        broker-local cache budget\n"
        "  --threads N         broker pool size (GF_THREADS)\n");
    return 0;
  }
  if (flags.Has("threads")) {
    const auto threads = flags.GetIntOr("threads");
    if (!threads.ok() || *threads < 1) {
      std::fprintf(stderr, "--threads must be a positive integer\n");
      return 2;
    }
    common::ThreadPool::SetDefaultThreadCount(static_cast<int>(*threads));
  }

  fleet::WorkerFleet::Options fleet_options;
  const long long workers = flags.GetInt("workers", 2);
  if (workers < 1 || workers > 256) {
    std::fprintf(stderr, "--workers must be in [1, 256], got %lld\n",
                 workers);
    return 2;
  }
  fleet_options.num_workers = static_cast<int>(workers);
  fleet_options.serverd_path = flags.GetString("serverd", "");
  const long long worker_threads = flags.GetInt("worker-threads", 0);
  if (worker_threads < 0) {
    std::fprintf(stderr, "--worker-threads must be >= 0\n");
    return 2;
  }
  fleet_options.threads = static_cast<int>(worker_threads);
  fleet_options.cache_mb = flags.GetInt("worker-cache-mb", -1);

  fleet::BrokerConfig broker_config;
  const std::string mode = flags.GetString("mode", "affinity");
  if (mode == "affinity") {
    broker_config.mode = fleet::BrokerConfig::Mode::kAffinity;
  } else if (mode == "scatter") {
    broker_config.mode = fleet::BrokerConfig::Mode::kScatter;
  } else {
    std::fprintf(stderr,
                 "--mode must be affinity or scatter, got \"%s\"\n",
                 mode.c_str());
    return 2;
  }
  const long long retries = flags.GetInt("retries", 1);
  if (retries < 0 || retries > 16) {
    std::fprintf(stderr, "--retries must be in [0, 16], got %lld\n",
                 retries);
    return 2;
  }
  broker_config.retries = static_cast<int>(retries);
  const long long backoff_ms = flags.GetInt("backoff-ms", 50);
  if (backoff_ms < 0 || backoff_ms > 60000) {
    std::fprintf(stderr, "--backoff-ms must be in [0, 60000], got %lld\n",
                 backoff_ms);
    return 2;
  }
  broker_config.backoff_ms = static_cast<int>(backoff_ms);

  serve::WireClient::Wire worker_wire = serve::WireClient::Wire::kBinary;
  const std::string worker_wire_flag =
      flags.GetString("worker-wire", "binary");
  if (worker_wire_flag == "json") {
    worker_wire = serve::WireClient::Wire::kJson;
  } else if (worker_wire_flag != "binary") {
    std::fprintf(stderr,
                 "--worker-wire must be json or binary, got \"%s\"\n",
                 worker_wire_flag.c_str());
    return 2;
  }

  serve::ServerConfig server_config = serve::ServerConfigFromEnv();
  if (!flags.Has("port") && server_config.port == 4017) {
    server_config.port = 4018;  // default one above the worker daemon's
  }
  const long long port = flags.GetInt("port", server_config.port);
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "--port must be in [0, 65535], got %lld\n", port);
    return 2;
  }
  server_config.port = static_cast<int>(port);
  const long long max_inflight =
      flags.GetInt("max-inflight", server_config.max_inflight);
  if (max_inflight < 1 || max_inflight > (1 << 20)) {
    std::fprintf(stderr, "--max-inflight must be in [1, %d], got %lld\n",
                 1 << 20, max_inflight);
    return 2;
  }
  server_config.max_inflight = static_cast<int>(max_inflight);
  const long long credit_window =
      flags.GetInt("credits", server_config.credit_window);
  if (credit_window < 0 || credit_window > (1 << 20)) {
    std::fprintf(stderr, "--credits must be in [0, %d], got %lld\n",
                 1 << 20, credit_window);
    return 2;
  }
  server_config.credit_window = static_cast<int>(credit_window);
  if (flags.Has("wire")) {
    const std::string wire = flags.GetString("wire", "auto");
    if (wire == "json") {
      server_config.wire = serve::ServerConfig::Wire::kJson;
    } else if (wire == "binary") {
      server_config.wire = serve::ServerConfig::Wire::kBinary;
    } else if (wire == "auto") {
      server_config.wire = serve::ServerConfig::Wire::kAuto;
    } else {
      std::fprintf(stderr,
                   "--wire must be auto, json, or binary, got \"%s\"\n",
                   wire.c_str());
      return 2;
    }
  }
  broker_config.session = serve::SessionConfigFromEnv();
  if (flags.Has("cache-mb")) {
    const long long mb = flags.GetInt("cache-mb", 256);
    if (mb < 0 || mb > (1ll << 40)) {
      std::fprintf(stderr, "--cache-mb must be in [0, 2^40], got %lld\n",
                   mb);
      return 2;
    }
    broker_config.session.cache_bytes = mb <= 0 ? 0 : mb * 1024 * 1024;
  }

  auto fleet_or = fleet::WorkerFleet::Spawn(fleet_options);
  if (!fleet_or.ok()) {
    std::fprintf(stderr, "groupform_brokerd: %s\n",
                 fleet_or.status().ToString().c_str());
    return 1;
  }
  fleet::WorkerFleet worker_fleet = std::move(*fleet_or);
  if (const auto status = worker_fleet.HealthCheck(); !status.ok()) {
    std::fprintf(stderr, "groupform_brokerd: health check: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "groupform_brokerd: %d workers up on ports",
               static_cast<int>(worker_fleet.endpoints().size()));
  for (const fleet::Endpoint& endpoint : worker_fleet.endpoints()) {
    std::fprintf(stderr, " %d", endpoint.port);
  }
  std::fprintf(stderr, "\n");

  fleet::TcpTransport transport(worker_fleet.endpoints(), worker_wire);
  fleet::BrokerSession broker(broker_config, transport);

  if (flags.GetBool("pipe", false)) {
    const long long served = serve::ServePipe(
        broker, std::cin, std::cout, server_config.max_inflight);
    std::fprintf(stderr, "groupform_brokerd: served %lld requests\n",
                 served);
    return 0;
  }

  serve::TcpServer server(broker, server_config);
  if (const auto status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "groupform_brokerd: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  if (flags.Has("port-file")) {
    const std::string port_file = flags.GetString("port-file", "");
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr,
                   "groupform_brokerd: cannot write --port-file %s\n",
                   port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%d\n", server.port());
    std::fclose(f);
  }
  std::fprintf(stderr,
               "groupform_brokerd: listening on 127.0.0.1:%d (mode=%s, "
               "workers=%d, max_inflight=%d)\n",
               server.port(), mode.c_str(), fleet_options.num_workers,
               server_config.max_inflight);
  const auto status = server.Serve();
  g_server = nullptr;
  if (!status.ok()) {
    std::fprintf(stderr, "groupform_brokerd: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RealMain(argc, argv); }
