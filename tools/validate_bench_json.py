#!/usr/bin/env python3
"""Validates the machine-readable JSON the repo's binaries emit.

Usage: validate_bench_json.py DIR [--require-solvers NAME,NAME,...]
       validate_bench_json.py --protocol FILE [FILE...]

Default (bench) mode checks, for every BENCH_*.json in DIR
(DESIGN.md §11.3):
  * the document parses as JSON and carries the groupform.bench/1 schema;
  * the envelope's "registry" lists at least the required solver set
    (default: the eight built-ins), i.e. the build under test can still
    run every paper algorithm;
  * each "sweeps" entry (when present) has series and cells, every cell
    state is OK/DNF/ERR, every OK cell's "values" row matches the sweep's
    declared "metrics" columns (the delta_vs_resolve trajectory snapshot
    rides on this), and no sweep reports ERR cells while the document
    claims all_ok;
  * BENCH_scale_*.json additionally carries the storage-backend report
    (DESIGN.md §14.5): a "scale" object with positive users/items/ratings,
    a backends array covering at least dense/compact8/mmap with numeric
    size and throughput fields, topk_identical true on every backend
    (compact scans return the same top-k lists as dense), and
    reduction_dense_over_compact8 >= 4 — the PR-7 headline is a ratio of
    per-user byte costs, so it holds at smoke scale too;
  * BENCH_serve_*.json additionally carries the serving-load report
    (DESIGN.md §15): a "serve" object whose rows each report
    wire/mode/threads/requests/batch_size plus numeric rps and p50/p99
    latencies, with binary/batch rps >= json/single rps at every thread
    count;
  * BENCH_fleet_*.json additionally carries the broker-fleet scaling
    report (DESIGN.md §16): a "fleet" object whose rows each report
    workers/wire/mode/requests/batch_size plus numeric rps and p50/p99
    latencies, with fleet (2+ worker) rps >= single-worker rps for every
    wire x mode;
  * BENCH_constrained_*.json additionally pins the constraint-ablation
    invariant (DESIGN.md §17): every sweep carries plain greedy as the
    unconstrained bound series plus at least one constrained solver, and
    at every x each constrained solver's OK objective is at most the
    greedy objective at the same x.

--protocol mode validates newline-delimited groupform.response/1 streams
captured from groupform_serverd (docs/PROTOCOL.md): every line must parse,
carry the response schema, use a known state, and ship the fields that
state requires (OK: solver/objective/num_groups/metrics; DNF and ERR: a
known non-OK code plus a message). `groupform.delta/1` answers additionally
carry the epoch envelope — a non-empty "epoch" key, a numeric
"objective_delta_vs_previous", and a non-negative integer
"warm_start_passes" — and only OK responses may carry it.

Exit code 0 when every file validates, 1 otherwise. CI smoke-runs one
tiny sweep per bench category plus a canned request stream and gates both
on this script.
"""

import argparse
import json
import pathlib
import sys

BUILTIN_SOLVERS = [
    "baseline",
    "bnb",
    "brute",
    "exact",
    "greedy",
    "localsearch",
    "sa",
    "veckmeans",
]


def fail(path, message):
    print(f"FAIL {path}: {message}")
    return False


def validate_sweep(path, sweep):
    ok = True
    name = sweep.get("sweep", "<unnamed>")
    if sweep.get("schema") != "groupform.sweep/1":
        ok = fail(path, f"sweep {name}: bad schema {sweep.get('schema')!r}")
    if not sweep.get("series"):
        ok = fail(path, f"sweep {name}: no series")
    if not sweep.get("cells"):
        ok = fail(path, f"sweep {name}: no cells")
    expected = len(sweep.get("series", [])) * len(sweep.get("xs", []))
    if expected and len(sweep.get("cells", [])) != expected:
        ok = fail(
            path,
            f"sweep {name}: {len(sweep['cells'])} cells, expected {expected}",
        )
    metrics = sweep.get("metrics", [])
    for cell in sweep.get("cells", []):
        state = cell.get("state")
        if state not in ("OK", "DNF", "ERR"):
            ok = fail(path, f"sweep {name}: bad cell state {state!r}")
        if state == "OK":
            if "objective" not in cell:
                ok = fail(path, f"sweep {name}: OK cell without objective")
            values = cell.get("values")
            if metrics and (
                not isinstance(values, list)
                or len(values) != len(metrics)
                or any(not isinstance(v, (int, float)) for v in values)
            ):
                ok = fail(
                    path,
                    f"sweep {name}: OK cell values {values!r} do not match "
                    f"declared metrics {metrics}",
                )
    return ok


REQUIRED_SCALE_BACKENDS = {"dense", "compact8", "mmap"}

SCALE_BACKEND_NUMERIC_KEYS = [
    "bytes",
    "charged_bytes",
    "bytes_per_user",
    "load_seconds",
    "scan_cells_per_sec",
]

MIN_SCALE_REDUCTION = 4.0


def validate_scale(path, doc):
    scale = doc.get("scale")
    if not isinstance(scale, dict):
        return fail(path, "scale bench without a scale object")
    ok = True
    for key in ("users", "items", "ratings", "file_bytes"):
        value = scale.get(key)
        if not isinstance(value, int) or value <= 0:
            ok = fail(path, f"scale.{key} must be a positive integer")
    backends = scale.get("backends")
    if not isinstance(backends, list) or not backends:
        return fail(path, "scale.backends must be a non-empty array")
    names = set()
    for backend in backends:
        name = backend.get("name")
        if not isinstance(name, str) or not name:
            ok = fail(path, "scale backend without a name")
            continue
        names.add(name)
        for key in SCALE_BACKEND_NUMERIC_KEYS:
            if not isinstance(backend.get(key), (int, float)):
                ok = fail(path, f"backend {name}: missing numeric {key!r}")
        if backend.get("topk_identical") is not True:
            ok = fail(path, f"backend {name}: topk_identical is not true")
    missing = sorted(REQUIRED_SCALE_BACKENDS - names)
    if missing:
        ok = fail(path, f"scale.backends missing: {', '.join(missing)}")
    reduction = scale.get("reduction_dense_over_compact8")
    if not isinstance(reduction, (int, float)):
        ok = fail(path, "scale without numeric reduction_dense_over_compact8")
    elif reduction < MIN_SCALE_REDUCTION:
        ok = fail(
            path,
            f"reduction_dense_over_compact8 is {reduction:.2f}, "
            f"below the required {MIN_SCALE_REDUCTION}x",
        )
    return ok


SERVE_ROW_WIRES = {"json", "binary"}
SERVE_ROW_MODES = {"single", "batch"}

SERVE_ROW_NUMERIC_KEYS = ["rps", "p50_ms", "p99_ms"]


def validate_serve(path, doc):
    """BENCH_serve_*.json: the serving-load report (DESIGN.md §15).

    Requires a "serve" object with a non-empty rows array, each row fully
    typed (wire/mode/threads/requests/batch_size plus numeric rps and
    p50/p99 latencies), and — the tentpole headline — binary/batch
    throughput at least json/single throughput at every reported thread
    count (batching plus framing must not lose to the naive path).
    """
    serve = doc.get("serve")
    if not isinstance(serve, dict):
        return fail(path, "serve bench without a serve object")
    ok = True
    if not isinstance(serve.get("batch_size"), int) or serve["batch_size"] < 1:
        ok = fail(path, "serve.batch_size must be a positive integer")
    rows = serve.get("rows")
    if not isinstance(rows, list) or not rows:
        return fail(path, "serve.rows must be a non-empty array")
    rps = {}  # (wire, mode, threads) -> rps
    for index, row in enumerate(rows):
        where = f"serve.rows[{index}]"
        wire = row.get("wire")
        mode = row.get("mode")
        if wire not in SERVE_ROW_WIRES:
            ok = fail(path, f"{where}: bad wire {wire!r}")
        if mode not in SERVE_ROW_MODES:
            ok = fail(path, f"{where}: bad mode {mode!r}")
        for key in ("threads", "requests", "batch_size"):
            if not isinstance(row.get(key), int) or row[key] < 1:
                ok = fail(path, f"{where}: {key} must be a positive integer")
        for key in SERVE_ROW_NUMERIC_KEYS:
            value = row.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                ok = fail(path, f"{where}: missing numeric {key!r}")
        if ok:
            rps[(wire, mode, row["threads"])] = row["rps"]
    if not ok:
        return ok
    thread_counts = sorted({threads for (_, _, threads) in rps})
    for threads in thread_counts:
        json_single = rps.get(("json", "single", threads))
        binary_batch = rps.get(("binary", "batch", threads))
        if json_single is None or binary_batch is None:
            ok = fail(
                path,
                f"threads={threads}: need both a json/single and a "
                f"binary/batch row",
            )
        elif binary_batch < json_single:
            ok = fail(
                path,
                f"threads={threads}: binary/batch {binary_batch:.0f} rps "
                f"is below json/single {json_single:.0f} rps",
            )
    return ok


FLEET_ROW_WIRES = {"json", "binary"}
FLEET_ROW_MODES = {"single", "batch"}

FLEET_ROW_NUMERIC_KEYS = ["rps", "p50_ms", "p99_ms"]


def validate_fleet(path, doc):
    """BENCH_fleet_*.json: the broker-fleet scaling report (DESIGN.md §16).

    Requires a "fleet" object with a non-empty rows array, each row fully
    typed (workers/wire/mode/requests/batch_size plus numeric rps and
    p50/p99 latencies), and — the tentpole headline — for every wire ×
    mode, throughput at 2+ workers at least the single-worker (workers=1)
    throughput: the fleet's aggregate instance cache must pay for the
    broker tier.
    """
    fleet = doc.get("fleet")
    if not isinstance(fleet, dict):
        return fail(path, "fleet bench without a fleet object")
    ok = True
    for key in ("batch_size", "client_threads", "worker_cache_bytes"):
        if not isinstance(fleet.get(key), int) or fleet[key] < 1:
            ok = fail(path, f"fleet.{key} must be a positive integer")
    rows = fleet.get("rows")
    if not isinstance(rows, list) or not rows:
        return fail(path, "fleet.rows must be a non-empty array")
    rps = {}  # (wire, mode, workers) -> rps
    for index, row in enumerate(rows):
        where = f"fleet.rows[{index}]"
        wire = row.get("wire")
        mode = row.get("mode")
        if wire not in FLEET_ROW_WIRES:
            ok = fail(path, f"{where}: bad wire {wire!r}")
        if mode not in FLEET_ROW_MODES:
            ok = fail(path, f"{where}: bad mode {mode!r}")
        for key in ("workers", "requests", "batch_size"):
            if not isinstance(row.get(key), int) or row[key] < 1:
                ok = fail(path, f"{where}: {key} must be a positive integer")
        for key in FLEET_ROW_NUMERIC_KEYS:
            value = row.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                ok = fail(path, f"{where}: missing numeric {key!r}")
        if ok:
            rps[(wire, mode, row["workers"])] = row["rps"]
    if not ok:
        return ok
    for wire in sorted({w for (w, _, _) in rps}):
        for mode in sorted({m for (_, m, _) in rps}):
            single = rps.get((wire, mode, 1))
            fleet_best = max(
                (r for (w, m, n), r in rps.items()
                 if w == wire and m == mode and n > 1),
                default=None,
            )
            if single is None or fleet_best is None:
                ok = fail(
                    path,
                    f"{wire}/{mode}: need a workers=1 row and at least "
                    f"one workers>1 row",
                )
            elif fleet_best < single:
                ok = fail(
                    path,
                    f"{wire}/{mode}: fleet best {fleet_best:.0f} rps is "
                    f"below single-worker {single:.0f} rps",
                )
    return ok


CONSTRAINED_BOUND_SOLVER = "greedy"

CONSTRAINED_EPSILON = 1e-6


def validate_constrained(path, doc):
    """BENCH_constrained_*.json: the constraint-ablation report (DESIGN.md §17).

    Every sweep must carry the unconstrained bound series (plain greedy,
    which ignores problem.constraints) and at least one constrained
    solver, and — the invariant the ablation exists to pin — at every x,
    each constrained solver's OK objective is at most the greedy
    objective at the same x: adding capacity, link, or fairness
    constraints can only shrink the feasible region.
    """
    sweeps = doc.get("sweeps", [])
    if not sweeps:
        return fail(path, "constrained bench without sweeps")
    ok = True
    for sweep in sweeps:
        name = sweep.get("sweep", "<unnamed>")
        bound = {}  # x -> greedy objective
        constrained = []  # (x, solver, objective)
        for cell in sweep.get("cells", []):
            if cell.get("state") != "OK":
                continue
            x = cell.get("x")
            solver = cell.get("solver")
            objective = cell.get("objective")
            if not isinstance(objective, (int, float)):
                continue  # validate_sweep already flagged it
            if solver == CONSTRAINED_BOUND_SOLVER:
                bound[x] = objective
            else:
                constrained.append((x, solver, objective))
        if not bound:
            ok = fail(
                path,
                f"sweep {name}: no OK {CONSTRAINED_BOUND_SOLVER!r} cells "
                f"to serve as the unconstrained bound",
            )
            continue
        if not constrained:
            ok = fail(path, f"sweep {name}: no OK constrained-solver cells")
            continue
        for x, solver, objective in constrained:
            if x not in bound:
                ok = fail(
                    path,
                    f"sweep {name}: x={x} has a {solver} cell but no "
                    f"{CONSTRAINED_BOUND_SOLVER} bound cell",
                )
            elif objective > bound[x] + CONSTRAINED_EPSILON:
                ok = fail(
                    path,
                    f"sweep {name}: x={x} {solver} objective "
                    f"{objective:.4f} exceeds the unconstrained "
                    f"{CONSTRAINED_BOUND_SOLVER} bound {bound[x]:.4f}",
                )
    return ok


def validate_file(path, required_solvers):
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        return fail(path, f"does not parse: {error}")
    ok = True
    if doc.get("schema") != "groupform.bench/1":
        ok = fail(path, f"bad schema {doc.get('schema')!r}")
    registry = doc.get("registry", [])
    missing = sorted(set(required_solvers) - set(registry))
    if missing:
        ok = fail(path, f"registry is missing solvers: {', '.join(missing)}")
    sweeps = doc.get("sweeps", [])
    for sweep in sweeps:
        ok = validate_sweep(path, sweep) and ok
    if path.name.startswith("BENCH_scale_"):
        ok = validate_scale(path, doc) and ok
    if path.name.startswith("BENCH_serve_"):
        ok = validate_serve(path, doc) and ok
    if path.name.startswith("BENCH_fleet_"):
        ok = validate_fleet(path, doc) and ok
    if path.name.startswith("BENCH_constrained_"):
        ok = validate_constrained(path, doc) and ok
    if sweeps and doc.get("all_ok") and any(
        cell.get("state") == "ERR"
        for sweep in sweeps
        for cell in sweep.get("cells", [])
    ):
        ok = fail(path, "all_ok is true but ERR cells exist")
    if ok:
        kind = f"{len(sweeps)} sweeps" if sweeps else "envelope"
        print(f"ok   {path} ({kind}, registry of {len(registry)})")
    return ok


STATUS_CODES = [
    "INVALID_ARGUMENT",
    "NOT_FOUND",
    "OUT_OF_RANGE",
    "FAILED_PRECONDITION",
    "RESOURCE_EXHAUSTED",
    "UNIMPLEMENTED",
    "INTERNAL",
    "DATA_LOSS",
    "UNAVAILABLE",
]

METRIC_KEYS = [
    "avg_group_satisfaction",
    "mean_user_rating",
    "mean_user_ndcg",
    "fully_satisfied",
]


def validate_response_line(path, index, line):
    where = f"{path}:{index}"
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as error:
        return fail(where, f"does not parse: {error}")
    ok = True
    if doc.get("schema") != "groupform.response/1":
        ok = fail(where, f"bad schema {doc.get('schema')!r}")
    state = doc.get("state")
    if state not in ("OK", "DNF", "ERR"):
        return fail(where, f"bad state {state!r}")
    if state == "OK":
        if not isinstance(doc.get("solver"), str) or not doc["solver"]:
            ok = fail(where, "OK response without a solver name")
        if not isinstance(doc.get("objective"), (int, float)):
            ok = fail(where, "OK response without a numeric objective")
        if not isinstance(doc.get("num_groups"), int) or doc["num_groups"] < 0:
            ok = fail(where, "OK response without a valid num_groups")
        metrics = doc.get("metrics")
        if not isinstance(metrics, dict):
            ok = fail(where, "OK response without a metrics object")
        else:
            for key in METRIC_KEYS:
                if not isinstance(metrics.get(key), (int, float)):
                    ok = fail(where, f"metrics missing numeric {key!r}")
        groups = doc.get("groups")
        if groups is not None and (
            not isinstance(groups, list)
            or any(
                not isinstance(g, list)
                or any(not isinstance(u, int) for u in g)
                for g in groups
            )
        ):
            ok = fail(where, "groups must be arrays of integer user ids")
    else:
        if doc.get("code") not in STATUS_CODES:
            ok = fail(where, f"{state} response with code {doc.get('code')!r}")
        if not isinstance(doc.get("message"), str):
            ok = fail(where, f"{state} response without a message")
    delta_keys = ("epoch", "objective_delta_vs_previous", "warm_start_passes")
    if any(key in doc for key in delta_keys):
        if state != "OK":
            ok = fail(where, f"{state} response carries delta envelope keys")
        if not isinstance(doc.get("epoch"), str) or not doc.get("epoch"):
            ok = fail(where, "delta response without a non-empty epoch")
        if not isinstance(
            doc.get("objective_delta_vs_previous"), (int, float)
        ):
            ok = fail(
                where,
                "delta response without numeric objective_delta_vs_previous",
            )
        passes = doc.get("warm_start_passes")
        if not isinstance(passes, int) or passes < 0:
            ok = fail(
                where,
                "delta response without a non-negative warm_start_passes",
            )
    return ok


def validate_protocol_file(path):
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        return fail(path, f"unreadable: {error}")
    lines = [line for line in lines if line.strip()]
    if not lines:
        return fail(path, "no response lines")
    ok = True
    for index, line in enumerate(lines, start=1):
        ok = validate_response_line(path, index, line) and ok
    if ok:
        print(f"ok   {path} ({len(lines)} responses)")
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths",
        type=pathlib.Path,
        nargs="+",
        help="bench-JSON directory, or response files with --protocol",
    )
    parser.add_argument(
        "--require-solvers",
        default=",".join(BUILTIN_SOLVERS),
        help="comma-separated solver names the registry must contain",
    )
    parser.add_argument(
        "--protocol",
        action="store_true",
        help="validate groupform.response/1 streams instead of BENCH_*.json",
    )
    args = parser.parse_args()
    if args.protocol:
        ok = True
        for path in args.paths:
            ok = validate_protocol_file(path) and ok
        return 0 if ok else 1
    if len(args.paths) != 1:
        print("FAIL: bench mode takes exactly one directory")
        return 1
    required = [s for s in args.require_solvers.split(",") if s]
    files = sorted(args.paths[0].glob("BENCH_*.json"))
    if not files:
        print(f"FAIL {args.paths[0]}: no BENCH_*.json files found")
        return 1
    ok = True
    for path in files:
        ok = validate_file(path, required) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
