#!/usr/bin/env python3
"""Validates the BENCH_*.json documents the benches emit (DESIGN.md §11.3).

Usage: validate_bench_json.py DIR [--require-solvers NAME,NAME,...]

Checks, for every BENCH_*.json in DIR:
  * the document parses as JSON and carries the groupform.bench/1 schema;
  * the envelope's "registry" lists at least the required solver set
    (default: the eight built-ins), i.e. the build under test can still
    run every paper algorithm;
  * each "sweeps" entry (when present) has series and cells, every cell
    state is OK/DNF/ERR, and no sweep reports ERR cells while the
    document claims all_ok.

Exit code 0 when every file validates, 1 otherwise. CI smoke-runs one
tiny sweep per bench category and gates on this script.
"""

import argparse
import json
import pathlib
import sys

BUILTIN_SOLVERS = [
    "baseline",
    "bnb",
    "brute",
    "exact",
    "greedy",
    "localsearch",
    "sa",
    "veckmeans",
]


def fail(path, message):
    print(f"FAIL {path}: {message}")
    return False


def validate_sweep(path, sweep):
    ok = True
    name = sweep.get("sweep", "<unnamed>")
    if sweep.get("schema") != "groupform.sweep/1":
        ok = fail(path, f"sweep {name}: bad schema {sweep.get('schema')!r}")
    if not sweep.get("series"):
        ok = fail(path, f"sweep {name}: no series")
    if not sweep.get("cells"):
        ok = fail(path, f"sweep {name}: no cells")
    expected = len(sweep.get("series", [])) * len(sweep.get("xs", []))
    if expected and len(sweep.get("cells", [])) != expected:
        ok = fail(
            path,
            f"sweep {name}: {len(sweep['cells'])} cells, expected {expected}",
        )
    for cell in sweep.get("cells", []):
        state = cell.get("state")
        if state not in ("OK", "DNF", "ERR"):
            ok = fail(path, f"sweep {name}: bad cell state {state!r}")
        if state == "OK" and "objective" not in cell:
            ok = fail(path, f"sweep {name}: OK cell without objective")
    return ok


def validate_file(path, required_solvers):
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        return fail(path, f"does not parse: {error}")
    ok = True
    if doc.get("schema") != "groupform.bench/1":
        ok = fail(path, f"bad schema {doc.get('schema')!r}")
    registry = doc.get("registry", [])
    missing = sorted(set(required_solvers) - set(registry))
    if missing:
        ok = fail(path, f"registry is missing solvers: {', '.join(missing)}")
    sweeps = doc.get("sweeps", [])
    for sweep in sweeps:
        ok = validate_sweep(path, sweep) and ok
    if sweeps and doc.get("all_ok") and any(
        cell.get("state") == "ERR"
        for sweep in sweeps
        for cell in sweep.get("cells", [])
    ):
        ok = fail(path, "all_ok is true but ERR cells exist")
    if ok:
        kind = f"{len(sweeps)} sweeps" if sweeps else "envelope"
        print(f"ok   {path} ({kind}, registry of {len(registry)})")
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("directory", type=pathlib.Path)
    parser.add_argument(
        "--require-solvers",
        default=",".join(BUILTIN_SOLVERS),
        help="comma-separated solver names the registry must contain",
    )
    args = parser.parse_args()
    required = [s for s in args.require_solvers.split(",") if s]
    files = sorted(args.directory.glob("BENCH_*.json"))
    if not files:
        print(f"FAIL {args.directory}: no BENCH_*.json files found")
        return 1
    ok = True
    for path in files:
        ok = validate_file(path, required) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
