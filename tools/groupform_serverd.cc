// groupform_serverd — long-lived serving front-end for recommendation-aware
// group formation (DESIGN.md §12, docs/PROTOCOL.md).
//
// Accepts newline-delimited `groupform.request/1` and `groupform.delta/1`
// JSON lines and answers one `groupform.response/1` line per request, in
// request order. Solvers resolve through core::SolverRegistry, execute as
// queued jobs on the shared common::ThreadPool, and instances load once
// into an LRU cache so repeated requests share one rating matrix. Delta
// requests carry a cumulative population-delta sequence against a cached
// instance; the post-delta epoch is materialised copy-on-write and the
// solve warm-starts from the previous epoch where the solver supports it
// (DESIGN.md §13).
//
//   groupform_serverd                         # TCP on 127.0.0.1:4017
//   groupform_serverd --port 0                # ephemeral port (printed)
//   groupform_serverd --pipe < reqs.jsonl     # stdin/stdout, exit at EOF
//
// TCP connections negotiate their wire per connection (DESIGN.md §15):
// a client opening with the GFB1 magic speaks length-prefixed binary
// frames with credit-based backpressure; anything else is newline-JSON.
// `groupform.batch/1` envelopes are accepted on both wires.
//
// Flags (each falls back to its environment knob, then the default):
//   --pipe              serve stdin→stdout instead of TCP
//   --port N            TCP port, 0 = ephemeral     (GF_SERVE_PORT, 4017)
//   --max-inflight N    pipelining window per stream (GF_SERVE_MAX_INFLIGHT, 4)
//   --credits N         binary-wire credit window, 0 = follow
//                       --max-inflight               (GF_SERVE_CREDITS, 0)
//   --wire MODE         auto | json | binary: which wires connections
//                       may negotiate                (GF_SERVE_WIRE, auto)
//   --cache-mb N        instance cache budget, 0 = unlimited
//                                               (GF_SERVE_CACHE_MB, 256)
//   --threads N         pool size (GF_THREADS, else hardware; 1 = serial)
//   --user-cap N        server-wide DNF cap for requests that set none
//   --port-file PATH    write the bound TCP port to PATH once listening
//                       (how a supervisor learns an ephemeral port)
//
// SIGINT/SIGTERM stop the TCP listener; in-flight requests drain first.
// Diagnostics go to stderr; stdout carries only protocol traffic.
#include <csignal>
#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/thread_pool.h"
#include "serve/server.h"
#include "serve/session.h"
#include "solvers/builtin.h"

namespace {

using namespace groupform;

serve::TcpServer* g_server = nullptr;

void HandleStopSignal(int) {
  // Shutdown only touches an atomic fd with shutdown()/close(), all
  // async-signal-safe; accept() then returns and Serve() drains.
  if (g_server != nullptr) g_server->Shutdown();
}

void LogCacheStats(serve::Session& session) {
  const auto stats = session.cache().stats();
  std::fprintf(stderr,
               "groupform_serverd: instance cache: %lld hits, %lld "
               "misses, %lld evictions, %lld bytes in %d entries\n",
               stats.hits, stats.misses, stats.evictions,
               static_cast<long long>(stats.bytes), stats.entries);
}

int RealMain(int argc, char** argv) {
  solvers::EnsureBuiltinSolversRegistered();
  common::FlagParser flags;
  if (const auto status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  if (flags.GetBool("help", false)) {
    std::printf(
        "groupform_serverd — newline-delimited JSON formation service\n"
        "(groupform.request/1 and groupform.delta/1, docs/PROTOCOL.md)\n\n"
        "  --pipe            stdin/stdout mode (exit at EOF)\n"
        "  --port N          TCP port, 0 = ephemeral (GF_SERVE_PORT)\n"
        "  --max-inflight N  pipelining window (GF_SERVE_MAX_INFLIGHT)\n"
        "  --credits N       binary-wire credit window, 0 = follow\n"
        "                    --max-inflight (GF_SERVE_CREDITS)\n"
        "  --wire MODE       auto|json|binary wire negotiation "
        "(GF_SERVE_WIRE)\n"
        "  --cache-mb N      cache budget, 0 = unlimited "
        "(GF_SERVE_CACHE_MB)\n"
        "  --threads N       pool size (GF_THREADS)\n"
        "  --user-cap N      default DNF cap for requests that set none\n"
        "  --port-file PATH  write the bound TCP port to PATH\n");
    return 0;
  }
  if (flags.Has("threads")) {
    const auto threads = flags.GetIntOr("threads");
    if (!threads.ok() || *threads < 1) {
      std::fprintf(stderr, "--threads must be a positive integer\n");
      return 2;
    }
    common::ThreadPool::SetDefaultThreadCount(static_cast<int>(*threads));
  }

  // Flag values get the same bounds the GF_SERVE_* env path enforces —
  // an out-of-range flag is a startup error, not a silent wrap.
  serve::ServerConfig server_config = serve::ServerConfigFromEnv();
  const long long port = flags.GetInt("port", server_config.port);
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "--port must be in [0, 65535], got %lld\n", port);
    return 2;
  }
  server_config.port = static_cast<int>(port);
  const long long max_inflight =
      flags.GetInt("max-inflight", server_config.max_inflight);
  if (max_inflight < 1 || max_inflight > (1 << 20)) {
    std::fprintf(stderr, "--max-inflight must be in [1, %d], got %lld\n",
                 1 << 20, max_inflight);
    return 2;
  }
  server_config.max_inflight = static_cast<int>(max_inflight);
  const long long credit_window =
      flags.GetInt("credits", server_config.credit_window);
  if (credit_window < 0 || credit_window > (1 << 20)) {
    std::fprintf(stderr, "--credits must be in [0, %d], got %lld\n",
                 1 << 20, credit_window);
    return 2;
  }
  server_config.credit_window = static_cast<int>(credit_window);
  if (flags.Has("wire")) {
    const std::string wire = flags.GetString("wire", "auto");
    if (wire == "json") {
      server_config.wire = serve::ServerConfig::Wire::kJson;
    } else if (wire == "binary") {
      server_config.wire = serve::ServerConfig::Wire::kBinary;
    } else if (wire == "auto") {
      server_config.wire = serve::ServerConfig::Wire::kAuto;
    } else {
      std::fprintf(stderr,
                   "--wire must be auto, json, or binary, got \"%s\"\n",
                   wire.c_str());
      return 2;
    }
  }
  serve::SessionConfig session_config = serve::SessionConfigFromEnv();
  if (flags.Has("cache-mb")) {
    const long long mb = flags.GetInt("cache-mb", 256);
    if (mb < 0 || mb > (1ll << 40)) {
      std::fprintf(stderr, "--cache-mb must be in [0, 2^40], got %lld\n",
                   mb);
      return 2;
    }
    session_config.cache_bytes = mb <= 0 ? 0 : mb * 1024 * 1024;
  }
  const long long user_cap = flags.GetInt("user-cap", 0);
  if (user_cap < 0) {
    std::fprintf(stderr, "--user-cap must be >= 0, got %lld\n", user_cap);
    return 2;
  }
  session_config.default_user_cap = user_cap;

  serve::Session session(session_config);

  if (flags.GetBool("pipe", false)) {
    const long long served = serve::ServePipe(
        session, std::cin, std::cout, server_config.max_inflight);
    std::fprintf(stderr, "groupform_serverd: served %lld requests\n",
                 served);
    LogCacheStats(session);
    return 0;
  }

  serve::TcpServer server(session, server_config);
  if (const auto status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "groupform_serverd: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  if (flags.Has("port-file")) {
    // Written after Start() bound the listener, so a supervisor that
    // polls for this file can connect as soon as it reads the port.
    const std::string port_file = flags.GetString("port-file", "");
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "groupform_serverd: cannot write --port-file %s\n",
                   port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%d\n", server.port());
    std::fclose(f);
  }
  const char* wire_name =
      server_config.wire == serve::ServerConfig::Wire::kJson ? "json"
      : server_config.wire == serve::ServerConfig::Wire::kBinary
          ? "binary"
          : "auto";
  std::fprintf(stderr,
               "groupform_serverd: listening on 127.0.0.1:%d "
               "(max_inflight=%d, credits=%d, wire=%s, cache_mb=%lld, "
               "threads=%d)\n",
               server.port(), server_config.max_inflight,
               server_config.credit_window > 0
                   ? server_config.credit_window
                   : server_config.max_inflight,
               wire_name,
               static_cast<long long>(session_config.cache_bytes) /
                   (1024 * 1024),
               common::ThreadPool::DefaultThreadCount());
  const auto status = server.Serve();
  g_server = nullptr;
  if (!status.ok()) {
    std::fprintf(stderr, "groupform_serverd: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  LogCacheStats(session);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RealMain(argc, argv); }
