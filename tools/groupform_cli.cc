// groupform_cli — run recommendation-aware group formation from the
// command line.
//
//   groupform_cli --input ratings.csv --k 5 --groups 10 --output groups.csv
//   groupform_cli --synthetic yahoo --users 2000 --algorithm localsearch
//   groupform_cli --synthetic yahoo --emit-lp model.lp
//   groupform_cli sweep fig1 --solvers greedy,localsearch --json-dir out/
//   groupform_cli request --port 4017 --algorithm greedy
//       --synthetic yahoo --users 200 --items 100
//
// Subcommands:
//   sweep [SUITE|all]   run the paper's evaluation sweeps (the same
//                       eval::SweepSpecs the bench binaries execute);
//                       no SUITE lists the available suites.
//       --solvers A,B   restrict registry-driven sweeps to these solvers
//                       (same effect as GF_SOLVERS)
//       --json-dir DIR  write BENCH_<suite>.json there (sets GF_BENCH_JSON)
//   request             send one groupform.request/1 line to a running
//                       groupform_serverd (docs/PROTOCOL.md) and print the
//                       response line. The request is assembled from the
//                       data/problem/--algorithm flags below, or passed
//                       verbatim with --raw 'JSON'.
//       --host H --port P   server address (default 127.0.0.1, GF_SERVE_PORT)
//       --wire json|binary  wire to speak: newline-JSON (default, the
//                           canonical/golden form) or GFB1 binary frames
//                           with credit backpressure (docs/PROTOCOL.md)
//       --batch N           send N copies as one groupform.batch/1
//                           envelope; prints one response line per element
//       --repeat N          send the request (or batch) N times over one
//                           persistent connection — the multi-request
//                           client-reuse path (default 1)
//       --keep-alive        with --repeat: pipeline the repeats through
//                           the credit/window machinery instead of
//                           waiting out each round trip
//       --request-id ID     correlation id echoed by the server
//       --deadline-ms N     per-request wall-clock budget (0 = none)
//       --user-cap N        DNF cap on instance size (0 = unlimited)
//       --include-groups    ask for the full partition
//       --record-seconds    ask for server-side wall clock
//       --dump              print the request line instead of sending it
//   delta               send one groupform.delta/1 line: the same request
//                       flags plus a cumulative delta sequence against the
//                       named instance (docs/PROTOCOL.md §groupform.delta/1).
//       --deltas LIST       comma-separated operations, applied in order:
//                           add:U | remove:U | rerate:U:I:R
//                           (e.g. --deltas remove:3,add:3,rerate:0:2:4.5)
//       (plus every `request` flag: --host/--port/--raw/--dump/...)
//   pack                quantize a dense instance (any data flag below)
//                       into a GFCM compact file (DESIGN.md §14), servable
//                       via `request --gfcm FILE` with zero-copy mmap.
//       --qbits 8|16        quantized cell width (default 8)
//       --output PATH       where to write the .gfcm file (required)
//
// Flags:
//   --input PATH        user,item,rating CSV (ids re-indexed densely)
//   --movielens PATH    MovieLens ratings.dat ("user::item::rating::ts")
//   --gfcm PATH         (request/delta only) server-side GFCM file; the
//                       server maps it zero-copy (--backend mmap, default)
//   --backend NAME      (request/delta only) instance storage backend:
//                       dense | compact | mmap (docs/PROTOCOL.md)
//   --qbits 8|16        compact quantization width (with --backend compact
//                       or the pack subcommand)
//   --synthetic NAME    yahoo | movielens (shape via --users / --items)
//   --users N --items M --seed S    synthetic shape (default 1000x500)
//   --semantics lm|av   group recommendation semantics (default lm)
//   --aggregation max|min|sum       list aggregation (default min)
//   --k N               list length (default 5)
//   --groups N          max groups, the paper's ell (default 10)
//   --missing rmin|zero|skip        missing-rating policy (default rmin)
//   --min-group-size N  formation constraint: smallest allowed group
//   --max-group-size N  formation constraint: largest allowed group (0 = off)
//   --must-link A:B,... pairs that must share a group (constrained solvers)
//   --cannot-link A:B,...  pairs that must not share a group
//   --min-user-sat X    fairness floor on per-user satisfaction (fairgreedy)
//   --algorithm NAME    any registered solver; see --help for the list
//                       (the choices come from core::SolverRegistry)
//   --algo-seed S       seed for randomized solvers (default 99);
//                       independent of --seed, which shapes synthetic data
//   --solver-opt K=V    forward one option to the solver's factory
//                       (repeatable via commas: "max_passes=10,use_swaps=0")
//   --threads N         worker threads for parallel scoring/experiments
//                       (default: GF_THREADS env, else hardware; 1 = serial)
//   --candidate-depth D residual candidate truncation (0 = full catalogue)
//   --output PATH       write "group,user" CSV of the partition
//   --emit-lp PATH      also write the Appendix-A IP in LP format
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/csv.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/delta.h"
#include "core/formation.h"
#include "core/solver_registry.h"
#include "data/binary_io.h"
#include "data/compact_matrix.h"
#include "data/dataset_stats.h"
#include "data/loaders.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "eval/paper_sweeps.h"
#include "eval/sweep.h"
#include "eval/weighted_objective.h"
#include "exact/ip_model.h"
#include "grouprec/semantics.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "solvers/builtin.h"

namespace {

using namespace groupform;

common::StatusOr<data::RatingMatrix> LoadData(
    const common::FlagParser& flags) {
  if (flags.Has("input")) {
    data::LoaderOptions options;
    return data::LoadTripletFile(flags.GetString("input", ""), options);
  }
  if (flags.Has("movielens")) {
    return data::LoadMovieLens(flags.GetString("movielens", ""));
  }
  const std::string kind = flags.GetString("synthetic", "yahoo");
  const auto users = static_cast<std::int32_t>(flags.GetInt("users", 1000));
  const auto items = static_cast<std::int32_t>(flags.GetInt("items", 500));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  if (kind == "yahoo") {
    return data::GenerateLatentFactor(
        data::YahooMusicLikeConfig(users, items, seed));
  }
  if (kind == "movielens") {
    return data::GenerateLatentFactor(
        data::MovieLensLikeConfig(users, items, seed));
  }
  return common::Status::InvalidArgument("unknown --synthetic: " + kind);
}

/// Parses a "--must-link/--cannot-link A:B,C:D" pair list.
common::StatusOr<std::vector<std::pair<UserId, UserId>>> ParsePairFlag(
    const common::FlagParser& flags, const char* flag) {
  std::vector<std::pair<UserId, UserId>> pairs;
  for (const std::string& token :
       common::Split(flags.GetString(flag, ""), ',')) {
    const std::string trimmed{common::Trim(token)};
    if (trimmed.empty()) continue;
    const std::vector<std::string> fields = common::Split(trimmed, ':');
    long long a = 0;
    long long b = 0;
    if (fields.size() != 2 || !common::ParseInt64(fields[0], &a) ||
        !common::ParseInt64(fields[1], &b) || a < 0 || b < 0 ||
        a > 2147483647ll || b > 2147483647ll) {
      return common::Status::InvalidArgument(common::StrFormat(
          "--%s token \"%s\": expected A:B with nonnegative user ids",
          flag, trimmed.c_str()));
    }
    pairs.emplace_back(static_cast<UserId>(a), static_cast<UserId>(b));
  }
  return pairs;
}

/// The formation-constraint flags (DESIGN.md §17), shared by the local
/// run path and the request/delta subcommands. An untouched flag set
/// yields the empty spec, so unconstrained invocations are unchanged.
common::StatusOr<core::ConstraintSpec> BuildConstraints(
    const common::FlagParser& flags) {
  core::ConstraintSpec spec;
  spec.min_group_size =
      static_cast<int>(flags.GetInt("min-group-size", spec.min_group_size));
  spec.max_group_size =
      static_cast<int>(flags.GetInt("max-group-size", spec.max_group_size));
  GF_ASSIGN_OR_RETURN(spec.must_link, ParsePairFlag(flags, "must-link"));
  GF_ASSIGN_OR_RETURN(spec.cannot_link, ParsePairFlag(flags, "cannot-link"));
  if (flags.Has("min-user-sat")) {
    spec.has_min_user_sat = true;
    spec.min_user_sat = flags.GetDouble("min-user-sat", 0.0);
  }
  GF_RETURN_IF_ERROR(spec.ValidateStructure());
  return spec;
}

common::StatusOr<core::FormationProblem> BuildProblem(
    const common::FlagParser& flags, const data::RatingMatrix& matrix) {
  core::FormationProblem problem;
  problem.matrix = &matrix;
  // Token → enum mappings are shared with the wire protocol
  // (grouprec/semantics.h), so the CLI and the server accept exactly the
  // same vocabulary.
  GF_ASSIGN_OR_RETURN(problem.semantics,
                      grouprec::SemanticsFromToken(
                          flags.GetString("semantics", "lm")));
  GF_ASSIGN_OR_RETURN(problem.aggregation,
                      grouprec::AggregationFromToken(
                          flags.GetString("aggregation", "min")));
  GF_ASSIGN_OR_RETURN(problem.missing,
                      grouprec::MissingPolicyFromToken(
                          flags.GetString("missing", "rmin")));
  problem.k = static_cast<int>(flags.GetInt("k", 5));
  problem.max_groups = static_cast<int>(flags.GetInt("groups", 10));
  problem.candidate_depth =
      static_cast<int>(flags.GetInt("candidate-depth", 0));
  GF_ASSIGN_OR_RETURN(problem.constraints, BuildConstraints(flags));
  GF_RETURN_IF_ERROR(problem.Validate());
  return problem;
}

/// Parses "--solver-opt k1=v1,k2=v2" into a SolverOptions bag.
core::SolverOptions ParseSolverOptions(const common::FlagParser& flags) {
  core::SolverOptions options;
  for (const std::string& pair :
       common::Split(flags.GetString("solver-opt", ""), ',')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      options.Set(pair, "");  // bare key = boolean true
    } else {
      options.Set(pair.substr(0, eq), pair.substr(eq + 1));
    }
  }
  return options;
}

/// The single algorithm dispatch: every registered solver is reachable,
/// with no per-algorithm code here. New solvers appear automatically once
/// they register (see solvers/builtin.cc).
common::StatusOr<core::FormationResult> RunChosen(
    const common::FlagParser& flags,
    const core::FormationProblem& problem) {
  const std::string algorithm = flags.GetString("algorithm", "greedy");
  GF_ASSIGN_OR_RETURN(const auto solver,
                      core::SolverRegistry::Global().Create(
                          algorithm, problem, ParseSolverOptions(flags)));
  // --algo-seed is deliberately separate from --seed (synthetic data
  // shape): the dataset and the solver trajectory vary independently.
  return solver->Solve(static_cast<std::uint64_t>(
      flags.GetInt("algo-seed", core::FormationSolver::kDefaultSeed)));
}

/// The `sweep` subcommand: run the shared paper sweep suites
/// (eval/paper_sweeps.h) from the CLI — identical specs, tables, JSON,
/// and exit-code discipline as the bench binaries.
int RunSweepCommand(const common::FlagParser& flags) {
  if (flags.Has("solvers")) {
    std::vector<std::string> names;
    for (const auto& piece :
         common::Split(flags.GetString("solvers", ""), ',')) {
      const auto trimmed = common::Trim(piece);
      if (!trimmed.empty()) names.emplace_back(trimmed);
    }
    eval::SetSweepSolverFilter(std::move(names));
  }
  if (flags.Has("json-dir")) {
    setenv("GF_BENCH_JSON", flags.GetString("json-dir", "").c_str(),
           /*overwrite=*/1);
  }
  const auto& positional = flags.positional();
  if (positional.size() < 2) {
    // Listing the suites is the documented behavior of a bare `sweep`,
    // not a usage error.
    std::printf(
        "usage: groupform_cli sweep SUITE|all [--solvers A,B] "
        "[--json-dir DIR]\n\navailable suites:\n");
    for (const auto& name : eval::PaperSuiteNames()) {
      const auto suite = eval::MakePaperSuite(name);
      std::printf("  %-10s %s\n", name.c_str(),
                  suite.ok() ? suite->title.c_str() : "");
    }
    return 0;
  }
  const std::string& choice = positional[1];
  if (choice == "all") {
    int exit_code = 0;
    for (const auto& name : eval::PaperSuiteNames()) {
      exit_code = std::max(exit_code, eval::RunPaperSuiteMain(name));
      std::printf("\n");
    }
    return exit_code;
  }
  return eval::RunPaperSuiteMain(choice);
}

/// Assembles a protocol request from the CLI's existing data/problem
/// flags, so the same invocation vocabulary drives both the in-process
/// path and a remote groupform_serverd.
common::StatusOr<serve::Request> BuildRequest(
    const common::FlagParser& flags) {
  serve::Request request;
  request.id = flags.GetString("request-id", "");
  request.solver = flags.GetString("algorithm", "greedy");
  request.options = ParseSolverOptions(flags);
  if (flags.Has("gfcm")) {
    request.instance.kind = "gfcm";
    request.instance.path = flags.GetString("gfcm", "");
  } else if (flags.Has("input")) {
    request.instance.kind = "csv";
    request.instance.path = flags.GetString("input", "");
  } else if (flags.Has("movielens")) {
    request.instance.kind = "movielens";
    request.instance.path = flags.GetString("movielens", "");
  } else {
    request.instance.kind = "synthetic";
    request.instance.preset = flags.GetString("synthetic", "yahoo");
    request.instance.users =
        static_cast<std::int32_t>(flags.GetInt("users", 1000));
    request.instance.items =
        static_cast<std::int32_t>(flags.GetInt("items", 500));
    request.instance.seed =
        static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  }
  // Per-kind backend default mirrors the wire protocol: gfcm files map
  // zero-copy unless the client opts out, everything else stays dense.
  request.instance.backend = flags.GetString(
      "backend", request.instance.kind == "gfcm" ? "mmap" : "dense");
  request.instance.qbits = static_cast<int>(flags.GetInt("qbits", 8));
  request.problem.semantics = flags.GetString("semantics", "lm");
  request.problem.aggregation = flags.GetString("aggregation", "min");
  request.problem.missing = flags.GetString("missing", "rmin");
  request.problem.k = static_cast<int>(flags.GetInt("k", 5));
  request.problem.groups = static_cast<int>(flags.GetInt("groups", 10));
  request.problem.candidate_depth =
      static_cast<int>(flags.GetInt("candidate-depth", 0));
  GF_ASSIGN_OR_RETURN(request.problem.constraints, BuildConstraints(flags));
  request.seed = static_cast<std::uint64_t>(
      flags.GetInt("algo-seed", core::FormationSolver::kDefaultSeed));
  request.deadline_ms = flags.GetInt("deadline-ms", 0);
  request.user_cap = flags.GetInt("user-cap", 0);
  request.include_groups = flags.GetBool("include-groups", false);
  request.record_seconds = flags.GetBool("record-seconds", false);
  // Round-trip through the parser so every flag value gets the same
  // validation a remote client's JSON would.
  return serve::ParseRequestLine(serve::RenderRequest(request));
}

/// Shared tail of the `request` and `delta` subcommands: print the line
/// under --dump, otherwise send it — over the wire --wire selects, as a
/// --batch-sized groupform.batch/1 envelope when asked, --repeat times
/// over one persistent connection — and report the response(s), one line
/// per element. Exit 0 when every response is OK/DNF (an expected
/// omission), 1 for any ERR or transport failure.
int DumpOrSendLine(const common::FlagParser& flags,
                   const std::string& line) {
  const long long batch = flags.GetInt("batch", 1);
  if (batch < 1 || batch > serve::kMaxBatchRequests) {
    std::fprintf(stderr, "--batch must be in [1, %d], got %lld\n",
                 serve::kMaxBatchRequests, batch);
    return 2;
  }
  const long long repeat = flags.GetInt("repeat", 1);
  if (repeat < 1 || repeat > 1000000) {
    std::fprintf(stderr, "--repeat must be in [1, 1000000], got %lld\n",
                 repeat);
    return 2;
  }
  const std::string wire_name = flags.GetString("wire", "json");
  if (wire_name != "json" && wire_name != "binary") {
    std::fprintf(stderr, "--wire must be json or binary, got \"%s\"\n",
                 wire_name.c_str());
    return 2;
  }
  if (flags.GetBool("dump", false)) {
    if (batch == 1) {
      std::printf("%s\n", line.c_str());
      return 0;
    }
    const auto request = serve::ParseRequestLine(line);
    if (!request.ok()) {
      std::fprintf(stderr, "building batch: %s\n",
                   request.status().ToString().c_str());
      return 2;
    }
    serve::BatchRequest envelope;
    envelope.requests.assign(static_cast<std::size_t>(batch), *request);
    std::printf("%s\n", serve::RenderBatchRequest(envelope).c_str());
    return 0;
  }
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int port = static_cast<int>(
      flags.GetInt("port", serve::ServerConfigFromEnv().port));
  auto client = serve::WireClient::Connect(
      host, port,
      wire_name == "binary" ? serve::WireClient::Wire::kBinary
                            : serve::WireClient::Wire::kJson);
  if (!client.ok()) {
    std::fprintf(stderr, "request: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  // All --repeat sends reuse this one connection. --keep-alive
  // additionally pipelines them (requests stream ahead of responses as
  // far as the server's window allows); without it every send is a
  // strict round trip, still on the same socket.
  std::vector<std::string> responses;
  if (batch == 1) {
    if (repeat > 1 && flags.GetBool("keep-alive", false)) {
      auto pipelined = client->CallPipelined(
          std::vector<std::string>(static_cast<std::size_t>(repeat), line));
      if (!pipelined.ok()) {
        std::fprintf(stderr, "request: %s\n",
                     pipelined.status().ToString().c_str());
        return 1;
      }
      responses = *std::move(pipelined);
    } else {
      for (long long i = 0; i < repeat; ++i) {
        auto response = client->Call(line);
        if (!response.ok()) {
          std::fprintf(stderr, "request: %s\n",
                       response.status().ToString().c_str());
          return 1;
        }
        responses.push_back(*std::move(response));
      }
    }
  } else {
    for (long long i = 0; i < repeat; ++i) {
      auto unpacked = client->CallBatch(
          std::vector<std::string>(static_cast<std::size_t>(batch), line));
      if (!unpacked.ok()) {
        std::fprintf(stderr, "request: %s\n",
                     unpacked.status().ToString().c_str());
        return 1;
      }
      for (std::string& response : *unpacked) {
        responses.push_back(std::move(response));
      }
    }
  }
  int exit_code = 0;
  for (const std::string& response : responses) {
    std::printf("%s\n", response.c_str());
    const auto parsed = serve::ParseResponseLine(response);
    if (!parsed.ok()) {
      std::fprintf(stderr, "unparseable response: %s\n",
                   parsed.status().ToString().c_str());
      exit_code = 1;
    } else if (parsed->state == eval::SweepCellState::kErr) {
      exit_code = 1;
    }
  }
  return exit_code;
}

/// The `request` subcommand: loopback client for groupform_serverd.
int RunRequestCommand(const common::FlagParser& flags) {
  std::string line = flags.GetString("raw", "");
  if (line.empty()) {
    const auto request = BuildRequest(flags);
    if (!request.ok()) {
      std::fprintf(stderr, "building request: %s\n",
                   request.status().ToString().c_str());
      return 2;
    }
    line = serve::RenderRequest(*request);
  }
  return DumpOrSendLine(flags, line);
}

/// Parses "--deltas add:U,remove:U,rerate:U:I:R" into the wire sequence.
/// The short op names add/remove are accepted alongside the wire's
/// add_user/remove_user.
common::StatusOr<std::vector<core::PopulationDelta>> ParseDeltasFlag(
    const std::string& text) {
  std::vector<core::PopulationDelta> deltas;
  for (const std::string& token : common::Split(text, ',')) {
    const std::string trimmed{common::Trim(token)};
    if (trimmed.empty()) continue;
    const std::vector<std::string> fields = common::Split(trimmed, ':');
    std::string op = fields[0];
    if (op == "add") op = "add_user";
    if (op == "remove") op = "remove_user";
    core::PopulationDelta delta;
    GF_ASSIGN_OR_RETURN(delta.kind, core::DeltaKindFromString(op));
    const std::size_t want =
        delta.kind == core::PopulationDelta::Kind::kRerate ? 4u : 2u;
    if (fields.size() != want) {
      return common::Status::InvalidArgument(common::StrFormat(
          "--deltas token \"%s\": expected %zu \":\"-separated fields",
          trimmed.c_str(), want));
    }
    long long user = 0;
    if (!common::ParseInt64(fields[1], &user) || user < 0 ||
        user > 2147483647ll) {
      return common::Status::InvalidArgument(
          "--deltas token \"" + trimmed + "\": bad user id");
    }
    delta.user = static_cast<UserId>(user);
    if (delta.kind == core::PopulationDelta::Kind::kRerate) {
      long long item = 0;
      if (!common::ParseInt64(fields[2], &item) || item < 0 ||
          item > 2147483647ll) {
        return common::Status::InvalidArgument(
            "--deltas token \"" + trimmed + "\": bad item id");
      }
      delta.item = static_cast<ItemId>(item);
      double rating = 0.0;
      if (!common::ParseDouble(fields[3], &rating)) {
        return common::Status::InvalidArgument(
            "--deltas token \"" + trimmed + "\": bad rating");
      }
      delta.rating = rating;
    }
    deltas.push_back(delta);
  }
  return deltas;
}

/// The `delta` subcommand: loopback client for groupform.delta/1. Builds
/// the same request envelope as `request`, attaches the --deltas sequence,
/// and re-round-trips through the parser so the delta grammar gets the
/// same validation a remote client's JSON would.
int RunDeltaCommand(const common::FlagParser& flags) {
  std::string line = flags.GetString("raw", "");
  if (line.empty()) {
    auto request = BuildRequest(flags);
    if (!request.ok()) {
      std::fprintf(stderr, "building request: %s\n",
                   request.status().ToString().c_str());
      return 2;
    }
    const auto deltas = ParseDeltasFlag(flags.GetString("deltas", ""));
    if (!deltas.ok()) {
      std::fprintf(stderr, "building request: %s\n",
                   deltas.status().ToString().c_str());
      return 2;
    }
    request->is_delta = true;
    request->deltas = *deltas;
    const auto round =
        serve::ParseRequestLine(serve::RenderRequest(*request));
    if (!round.ok()) {
      std::fprintf(stderr, "building request: %s\n",
                   round.status().ToString().c_str());
      return 2;
    }
    line = serve::RenderRequest(*round);
  }
  return DumpOrSendLine(flags, line);
}

/// The `pack` subcommand: quantize a dense instance into a GFCM file
/// (DESIGN.md §14) that groupform_serverd can map zero-copy.
int RunPackCommand(const common::FlagParser& flags) {
  const std::string out = flags.GetString("output", "");
  if (out.empty()) {
    std::fprintf(stderr, "pack: --output PATH is required\n");
    return 2;
  }
  const int qbits = static_cast<int>(flags.GetInt("qbits", 8));
  if (qbits != 8 && qbits != 16) {
    std::fprintf(stderr, "pack: --qbits must be 8 or 16, got %d\n", qbits);
    return 2;
  }
  const auto matrix = LoadData(flags);
  if (!matrix.ok()) {
    std::fprintf(stderr, "loading data: %s\n",
                 matrix.status().ToString().c_str());
    return 1;
  }
  const auto compact = data::CompactRatingMatrix::FromMatrix(*matrix, qbits);
  if (const auto status = data::SaveCompactBinary(compact, out);
      !status.ok()) {
    std::fprintf(stderr, "writing %s: %s\n", out.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf(
      "packed %d users x %d items (%lld ratings) at q%d\n"
      "  dense bytes:   %lld (%.1f per user)\n"
      "  compact bytes: %lld (%.1f per user, %.2fx smaller)\n"
      "  max round-trip error: %.3g\nwrote %s\n",
      matrix->num_users(), matrix->num_items(),
      static_cast<long long>(matrix->num_ratings()), qbits,
      static_cast<long long>(matrix->ByteSize()),
      static_cast<double>(matrix->ByteSize()) / matrix->num_users(),
      static_cast<long long>(compact.ByteSize()),
      static_cast<double>(compact.ByteSize()) / compact.num_users(),
      static_cast<double>(matrix->ByteSize()) /
          static_cast<double>(compact.ByteSize()),
      compact.quant().max_roundtrip_error(), out.c_str());
  return 0;
}

void PrintHelp() {
  std::printf(
      "groupform_cli — recommendation-aware group formation "
      "(RoyLL15, SIGMOD'15)\n\n"
      "subcommand: sweep SUITE|all     reproduce the paper's evaluation\n"
      "            (--solvers A,B --json-dir DIR; `sweep` alone lists "
      "suites)\n"
      "            request             send one request to a running\n"
      "            groupform_serverd (--host H --port P --wire json|binary\n"
      "            --batch N --repeat N --keep-alive, docs/PROTOCOL.md)\n"
      "            delta               send one groupform.delta/1 line\n"
      "            (--deltas add:U,remove:U,rerate:U:I:R plus request "
      "flags)\n"
      "            pack --output F.gfcm   quantize a dense instance into\n"
      "            a compact GFCM file (--qbits 8|16; serve it with\n"
      "            `request --gfcm F.gfcm [--backend mmap|compact|dense]`)"
      "\n\n"
      "data:      --input ratings.csv | --movielens ratings.dat |\n"
      "           --synthetic yahoo|movielens --users N --items M --seed S\n"
      "           --gfcm file.gfcm (request/delta; server-side path)\n"
      "backend:   --backend dense|compact|mmap --qbits 8|16 "
      "(request/delta)\n"
      "problem:   --semantics lm|av --aggregation max|min|sum --k N\n"
      "           --groups N --missing rmin|zero|skip --candidate-depth D\n"
      "constraints: --min-group-size N --max-group-size N\n"
      "           --must-link A:B,C:D --cannot-link A:B --min-user-sat X\n"
      "           (honoured by capgreedy/pairgreedy/fairgreedy and the\n"
      "           wire's problem.constraints object, docs/PROTOCOL.md)\n"
      "execution: --threads N (default GF_THREADS env, else hardware)\n"
      "           --algo-seed S               solver seed (default 99)\n"
      "           --solver-opt k=v[,k=v...]   solver-specific overrides\n"
      "output:    --output groups.csv --emit-lp model.lp\n\n"
      "--algorithm (from the solver registry):\n");
  const auto& registry = core::SolverRegistry::Global();
  for (const std::string& name : registry.Names()) {
    const auto description = registry.Description(name);
    std::printf("  %-12s %s\n", name.c_str(),
                description.ok() ? description->c_str() : "");
  }
}

int RealMain(int argc, char** argv) {
  solvers::EnsureBuiltinSolversRegistered();
  common::FlagParser flags;
  if (const auto status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  if (flags.GetBool("help", false)) {
    PrintHelp();
    return 0;
  }
  if (flags.Has("threads")) {
    const auto threads = flags.GetIntOr("threads");
    if (!threads.ok() || *threads < 1) {
      std::fprintf(stderr, "--threads must be a positive integer, got %s\n",
                   flags.GetString("threads", "").c_str());
      return 2;
    }
    common::ThreadPool::SetDefaultThreadCount(static_cast<int>(*threads));
  }
  if (!flags.positional().empty() && flags.positional()[0] == "sweep") {
    return RunSweepCommand(flags);
  }
  if (!flags.positional().empty() && flags.positional()[0] == "request") {
    return RunRequestCommand(flags);
  }
  if (!flags.positional().empty() && flags.positional()[0] == "delta") {
    return RunDeltaCommand(flags);
  }
  if (!flags.positional().empty() && flags.positional()[0] == "pack") {
    return RunPackCommand(flags);
  }

  const auto matrix = LoadData(flags);
  if (!matrix.ok()) {
    std::fprintf(stderr, "loading data: %s\n",
                 matrix.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", data::StatsToString(
                        data::ComputeStats(*matrix, "input")).c_str());

  const auto problem = BuildProblem(flags, *matrix);
  if (!problem.ok()) {
    std::fprintf(stderr, "%s\n", problem.status().ToString().c_str());
    return 2;
  }

  if (flags.Has("emit-lp")) {
    const auto status = exact::IpModel::WriteLpFile(
        *problem, flags.GetString("emit-lp", ""));
    if (!status.ok()) {
      std::fprintf(stderr, "emitting LP: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", flags.GetString("emit-lp", "").c_str());
  }

  common::Stopwatch stopwatch;
  const auto result = RunChosen(flags, *problem);
  if (!result.ok()) {
    std::fprintf(stderr, "formation: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const double seconds = stopwatch.ElapsedSeconds();

  std::printf("\n%s on %s\n", result->algorithm.c_str(),
              problem->ToString().c_str());
  std::printf("  objective:              %.3f\n", result->objective);
  std::printf("  groups formed:          %d\n", result->num_groups());
  const auto sizes = eval::GroupSizeSummary(*result);
  std::printf("  group sizes:            min=%.0f median=%.0f max=%.0f\n",
              sizes.min, sizes.median, sizes.max);
  std::printf("  avg group satisfaction: %.3f\n",
              eval::AvgGroupSatisfaction(*problem, *result));
  std::printf("  mean user rating:       %.3f\n",
              eval::MeanPerUserSatisfaction(*problem, *result));
  std::printf("  mean user NDCG@%d:       %.3f\n", problem->k,
              eval::MeanUserNdcg(*problem, *result));
  std::printf("  fully satisfied users:  %.1f%%\n",
              100.0 * eval::FullySatisfiedFraction(*problem, *result));
  std::printf("  wall clock:             %.3f s\n", seconds);

  if (flags.Has("output")) {
    common::CsvWriter writer;
    writer.AddRow({"group", "user"});
    for (int g = 0; g < result->num_groups(); ++g) {
      for (UserId u : result->groups[static_cast<std::size_t>(g)].members) {
        writer.AddRow({common::StrFormat("%d", g),
                       common::StrFormat("%d", u)});
      }
    }
    const auto status = writer.WriteFile(flags.GetString("output", ""));
    if (!status.ok()) {
      std::fprintf(stderr, "writing output: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", flags.GetString("output", "").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RealMain(argc, argv); }
