// groupform_cli — run recommendation-aware group formation from the
// command line.
//
//   groupform_cli --input ratings.csv --k 5 --groups 10 --output groups.csv
//   groupform_cli --synthetic yahoo --users 2000 --algorithm localsearch
//   groupform_cli --synthetic yahoo --emit-lp model.lp
//   groupform_cli sweep fig1 --solvers greedy,localsearch --json-dir out/
//
// Subcommands:
//   sweep [SUITE|all]   run the paper's evaluation sweeps (the same
//                       eval::SweepSpecs the bench binaries execute);
//                       no SUITE lists the available suites.
//       --solvers A,B   restrict registry-driven sweeps to these solvers
//                       (same effect as GF_SOLVERS)
//       --json-dir DIR  write BENCH_<suite>.json there (sets GF_BENCH_JSON)
//
// Flags:
//   --input PATH        user,item,rating CSV (ids re-indexed densely)
//   --movielens PATH    MovieLens ratings.dat ("user::item::rating::ts")
//   --synthetic NAME    yahoo | movielens (shape via --users / --items)
//   --users N --items M --seed S    synthetic shape (default 1000x500)
//   --semantics lm|av   group recommendation semantics (default lm)
//   --aggregation max|min|sum       list aggregation (default min)
//   --k N               list length (default 5)
//   --groups N          max groups, the paper's ell (default 10)
//   --missing rmin|zero|skip        missing-rating policy (default rmin)
//   --algorithm NAME    any registered solver; see --help for the list
//                       (the choices come from core::SolverRegistry)
//   --algo-seed S       seed for randomized solvers (default 99);
//                       independent of --seed, which shapes synthetic data
//   --solver-opt K=V    forward one option to the solver's factory
//                       (repeatable via commas: "max_passes=10,use_swaps=0")
//   --threads N         worker threads for parallel scoring/experiments
//                       (default: GF_THREADS env, else hardware; 1 = serial)
//   --candidate-depth D residual candidate truncation (0 = full catalogue)
//   --output PATH       write "group,user" CSV of the partition
//   --emit-lp PATH      also write the Appendix-A IP in LP format
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/csv.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/formation.h"
#include "core/solver_registry.h"
#include "data/dataset_stats.h"
#include "data/loaders.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "eval/paper_sweeps.h"
#include "eval/sweep.h"
#include "eval/weighted_objective.h"
#include "exact/ip_model.h"
#include "grouprec/semantics.h"
#include "solvers/builtin.h"

namespace {

using namespace groupform;

common::StatusOr<data::RatingMatrix> LoadData(
    const common::FlagParser& flags) {
  if (flags.Has("input")) {
    data::LoaderOptions options;
    return data::LoadTripletFile(flags.GetString("input", ""), options);
  }
  if (flags.Has("movielens")) {
    return data::LoadMovieLens(flags.GetString("movielens", ""));
  }
  const std::string kind = flags.GetString("synthetic", "yahoo");
  const auto users = static_cast<std::int32_t>(flags.GetInt("users", 1000));
  const auto items = static_cast<std::int32_t>(flags.GetInt("items", 500));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  if (kind == "yahoo") {
    return data::GenerateLatentFactor(
        data::YahooMusicLikeConfig(users, items, seed));
  }
  if (kind == "movielens") {
    return data::GenerateLatentFactor(
        data::MovieLensLikeConfig(users, items, seed));
  }
  return common::Status::InvalidArgument("unknown --synthetic: " + kind);
}

common::StatusOr<core::FormationProblem> BuildProblem(
    const common::FlagParser& flags, const data::RatingMatrix& matrix) {
  core::FormationProblem problem;
  problem.matrix = &matrix;
  const std::string semantics = flags.GetString("semantics", "lm");
  if (semantics == "lm") {
    problem.semantics = grouprec::Semantics::kLeastMisery;
  } else if (semantics == "av") {
    problem.semantics = grouprec::Semantics::kAggregateVoting;
  } else {
    return common::Status::InvalidArgument("unknown --semantics: " +
                                           semantics);
  }
  const std::string aggregation = flags.GetString("aggregation", "min");
  if (aggregation == "max") {
    problem.aggregation = grouprec::Aggregation::kMax;
  } else if (aggregation == "min") {
    problem.aggregation = grouprec::Aggregation::kMin;
  } else if (aggregation == "sum") {
    problem.aggregation = grouprec::Aggregation::kSum;
  } else {
    return common::Status::InvalidArgument("unknown --aggregation: " +
                                           aggregation);
  }
  const std::string missing = flags.GetString("missing", "rmin");
  if (missing == "rmin") {
    problem.missing = grouprec::MissingRatingPolicy::kScaleMin;
  } else if (missing == "zero") {
    problem.missing = grouprec::MissingRatingPolicy::kZero;
  } else if (missing == "skip") {
    problem.missing = grouprec::MissingRatingPolicy::kSkipUser;
  } else {
    return common::Status::InvalidArgument("unknown --missing: " + missing);
  }
  problem.k = static_cast<int>(flags.GetInt("k", 5));
  problem.max_groups = static_cast<int>(flags.GetInt("groups", 10));
  problem.candidate_depth =
      static_cast<int>(flags.GetInt("candidate-depth", 0));
  GF_RETURN_IF_ERROR(problem.Validate());
  return problem;
}

/// Parses "--solver-opt k1=v1,k2=v2" into a SolverOptions bag.
core::SolverOptions ParseSolverOptions(const common::FlagParser& flags) {
  core::SolverOptions options;
  for (const std::string& pair :
       common::Split(flags.GetString("solver-opt", ""), ',')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      options.Set(pair, "");  // bare key = boolean true
    } else {
      options.Set(pair.substr(0, eq), pair.substr(eq + 1));
    }
  }
  return options;
}

/// The single algorithm dispatch: every registered solver is reachable,
/// with no per-algorithm code here. New solvers appear automatically once
/// they register (see solvers/builtin.cc).
common::StatusOr<core::FormationResult> RunChosen(
    const common::FlagParser& flags,
    const core::FormationProblem& problem) {
  const std::string algorithm = flags.GetString("algorithm", "greedy");
  GF_ASSIGN_OR_RETURN(const auto solver,
                      core::SolverRegistry::Global().Create(
                          algorithm, problem, ParseSolverOptions(flags)));
  // --algo-seed is deliberately separate from --seed (synthetic data
  // shape): the dataset and the solver trajectory vary independently.
  return solver->Solve(static_cast<std::uint64_t>(
      flags.GetInt("algo-seed", core::FormationSolver::kDefaultSeed)));
}

/// The `sweep` subcommand: run the shared paper sweep suites
/// (eval/paper_sweeps.h) from the CLI — identical specs, tables, JSON,
/// and exit-code discipline as the bench binaries.
int RunSweepCommand(const common::FlagParser& flags) {
  if (flags.Has("solvers")) {
    std::vector<std::string> names;
    for (const auto& piece :
         common::Split(flags.GetString("solvers", ""), ',')) {
      const auto trimmed = common::Trim(piece);
      if (!trimmed.empty()) names.emplace_back(trimmed);
    }
    eval::SetSweepSolverFilter(std::move(names));
  }
  if (flags.Has("json-dir")) {
    setenv("GF_BENCH_JSON", flags.GetString("json-dir", "").c_str(),
           /*overwrite=*/1);
  }
  const auto& positional = flags.positional();
  if (positional.size() < 2) {
    // Listing the suites is the documented behavior of a bare `sweep`,
    // not a usage error.
    std::printf(
        "usage: groupform_cli sweep SUITE|all [--solvers A,B] "
        "[--json-dir DIR]\n\navailable suites:\n");
    for (const auto& name : eval::PaperSuiteNames()) {
      const auto suite = eval::MakePaperSuite(name);
      std::printf("  %-10s %s\n", name.c_str(),
                  suite.ok() ? suite->title.c_str() : "");
    }
    return 0;
  }
  const std::string& choice = positional[1];
  if (choice == "all") {
    int exit_code = 0;
    for (const auto& name : eval::PaperSuiteNames()) {
      exit_code = std::max(exit_code, eval::RunPaperSuiteMain(name));
      std::printf("\n");
    }
    return exit_code;
  }
  return eval::RunPaperSuiteMain(choice);
}

void PrintHelp() {
  std::printf(
      "groupform_cli — recommendation-aware group formation "
      "(RoyLL15, SIGMOD'15)\n\n"
      "subcommand: sweep SUITE|all     reproduce the paper's evaluation\n"
      "            (--solvers A,B --json-dir DIR; `sweep` alone lists "
      "suites)\n\n"
      "data:      --input ratings.csv | --movielens ratings.dat |\n"
      "           --synthetic yahoo|movielens --users N --items M --seed S\n"
      "problem:   --semantics lm|av --aggregation max|min|sum --k N\n"
      "           --groups N --missing rmin|zero|skip --candidate-depth D\n"
      "execution: --threads N (default GF_THREADS env, else hardware)\n"
      "           --algo-seed S               solver seed (default 99)\n"
      "           --solver-opt k=v[,k=v...]   solver-specific overrides\n"
      "output:    --output groups.csv --emit-lp model.lp\n\n"
      "--algorithm (from the solver registry):\n");
  const auto& registry = core::SolverRegistry::Global();
  for (const std::string& name : registry.Names()) {
    const auto description = registry.Description(name);
    std::printf("  %-12s %s\n", name.c_str(),
                description.ok() ? description->c_str() : "");
  }
}

int RealMain(int argc, char** argv) {
  solvers::EnsureBuiltinSolversRegistered();
  common::FlagParser flags;
  if (const auto status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  if (flags.GetBool("help", false)) {
    PrintHelp();
    return 0;
  }
  if (flags.Has("threads")) {
    const auto threads = flags.GetIntOr("threads");
    if (!threads.ok() || *threads < 1) {
      std::fprintf(stderr, "--threads must be a positive integer, got %s\n",
                   flags.GetString("threads", "").c_str());
      return 2;
    }
    common::ThreadPool::SetDefaultThreadCount(static_cast<int>(*threads));
  }
  if (!flags.positional().empty() && flags.positional()[0] == "sweep") {
    return RunSweepCommand(flags);
  }

  const auto matrix = LoadData(flags);
  if (!matrix.ok()) {
    std::fprintf(stderr, "loading data: %s\n",
                 matrix.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", data::StatsToString(
                        data::ComputeStats(*matrix, "input")).c_str());

  const auto problem = BuildProblem(flags, *matrix);
  if (!problem.ok()) {
    std::fprintf(stderr, "%s\n", problem.status().ToString().c_str());
    return 2;
  }

  if (flags.Has("emit-lp")) {
    const auto status = exact::IpModel::WriteLpFile(
        *problem, flags.GetString("emit-lp", ""));
    if (!status.ok()) {
      std::fprintf(stderr, "emitting LP: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", flags.GetString("emit-lp", "").c_str());
  }

  common::Stopwatch stopwatch;
  const auto result = RunChosen(flags, *problem);
  if (!result.ok()) {
    std::fprintf(stderr, "formation: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const double seconds = stopwatch.ElapsedSeconds();

  std::printf("\n%s on %s\n", result->algorithm.c_str(),
              problem->ToString().c_str());
  std::printf("  objective:              %.3f\n", result->objective);
  std::printf("  groups formed:          %d\n", result->num_groups());
  const auto sizes = eval::GroupSizeSummary(*result);
  std::printf("  group sizes:            min=%.0f median=%.0f max=%.0f\n",
              sizes.min, sizes.median, sizes.max);
  std::printf("  avg group satisfaction: %.3f\n",
              eval::AvgGroupSatisfaction(*problem, *result));
  std::printf("  mean user rating:       %.3f\n",
              eval::MeanPerUserSatisfaction(*problem, *result));
  std::printf("  mean user NDCG@%d:       %.3f\n", problem->k,
              eval::MeanUserNdcg(*problem, *result));
  std::printf("  fully satisfied users:  %.1f%%\n",
              100.0 * eval::FullySatisfiedFraction(*problem, *result));
  std::printf("  wall clock:             %.3f s\n", seconds);

  if (flags.Has("output")) {
    common::CsvWriter writer;
    writer.AddRow({"group", "user"});
    for (int g = 0; g < result->num_groups(); ++g) {
      for (UserId u : result->groups[static_cast<std::size_t>(g)].members) {
        writer.AddRow({common::StrFormat("%d", g),
                       common::StrFormat("%d", u)});
      }
    }
    const auto status = writer.WriteFile(flags.GetString("output", ""));
    if (!status.ok()) {
      std::fprintf(stderr, "writing output: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", flags.GetString("output", "").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RealMain(argc, argv); }
